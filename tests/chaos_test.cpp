// Chaos harness (`herd::chaos`): scenario generation, the per-key
// linearizability checker, deterministic replay, and scenario shrinking.
//
// The acceptance gate for the harness lives here: an intentionally injected
// dedup bug (HerdConfig::mutation_dedup = false) must produce a history the
// checker rejects, and the shrinker must reduce the triggering fault plan
// to at most two windows.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/history.hpp"
#include "chaos/linearize.hpp"
#include "chaos/scenario.hpp"
#include "fault/fault.hpp"
#include "herd/testbed.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"

namespace herd {
namespace {

using chaos::CheckResult;
using chaos::Event;
using chaos::EventType;
using chaos::Scenario;
using chaos::ScenarioEnvelope;
using core::RespStatus;
using workload::OpType;

// ---------------------------------------------------------------------------
// Scenario generation

TEST(ScenarioGen, SameSeedSameScenario) {
  ScenarioEnvelope env;
  Scenario a = chaos::generate_scenario(42, env);
  Scenario b = chaos::generate_scenario(42, env);
  EXPECT_EQ(a.to_json(), b.to_json());
  Scenario c = chaos::generate_scenario(43, env);
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(ScenarioGen, SamplesStayInsideEnvelope) {
  ScenarioEnvelope env;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    EXPECT_GE(sc.n_server_procs, env.min_server_procs);
    EXPECT_LE(sc.n_server_procs, env.max_server_procs);
    EXPECT_GE(sc.n_clients, env.min_clients);
    EXPECT_LE(sc.n_clients, env.max_clients);
    EXPECT_GE(sc.window, env.min_window);
    EXPECT_LE(sc.window, env.max_window);
    EXPECT_GE(sc.n_keys, env.min_keys);
    EXPECT_LE(sc.n_keys, env.max_keys);
    EXPECT_GE(sc.get_fraction, env.min_get_fraction);
    EXPECT_LE(sc.get_fraction, env.max_get_fraction);
    EXPECT_LE(sc.delete_fraction, env.max_delete_fraction);
    // Exactly-once horizon: the dedup cache must outlive any retry.
    core::TestbedConfig cfg = chaos::to_testbed_config(sc);
    EXPECT_GT(cfg.herd.dedup_retention,
              sc.resilience.deadline + sc.resilience.backoff_max);
    EXPECT_EQ(cfg.herd.replicate, sc.replicate);
    if (sc.replicate) {
      EXPECT_GE(sc.n_server_procs, 2u);
    }
    for (const auto& f : sc.plan.proc_crash) {
      EXPECT_LT(f.proc, sc.n_server_procs);
    }
  }
}

TEST(ScenarioGen, CrashPrimaryModeScriptsOneTargetedCrash) {
  ScenarioEnvelope env;
  env.force_crash_primary = true;
  env.min_server_procs = 2;
  bool some_recover = false;
  bool some_stay_dead = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    EXPECT_TRUE(sc.replicate) << "seed " << seed;
    EXPECT_TRUE(sc.crash_primary) << "seed " << seed;
    ASSERT_EQ(sc.plan.proc_crash.size(), 1u) << "seed " << seed;
    const fault::ProcCrashFault& f = sc.plan.proc_crash[0];
    EXPECT_LT(f.proc, sc.n_server_procs);
    // Mid-budget, so acked writes straddle the promotion.
    EXPECT_GE(f.crash_at, env.warmup + env.budget / 4);
    EXPECT_LE(f.crash_at, env.warmup + (env.budget * 3) / 4);
    if (f.recover_at > 0) {
      EXPECT_GT(f.recover_at, f.crash_at);
      some_recover = true;
    } else {
      some_stay_dead = true;
    }
  }
  // Both failover shapes appear in a sweep: crash-and-rejoin and
  // crash-forever (the promoted backup carries the run).
  EXPECT_TRUE(some_recover);
  EXPECT_TRUE(some_stay_dead);
}

TEST(ScenarioGen, ReplicationDrawsDoNotPerturbPriorSampling) {
  // The replicate coin is drawn after every pre-existing draw, so the
  // sampled topology and fault plan of a seed are identical whatever the
  // replicate_fraction — old failing seeds stay reproducible.
  ScenarioEnvelope off;
  off.replicate_fraction = 0.0;
  ScenarioEnvelope on;
  on.replicate_fraction = 1.0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Scenario a = chaos::generate_scenario(seed, off);
    Scenario b = chaos::generate_scenario(seed, on);
    EXPECT_FALSE(a.replicate);
    EXPECT_EQ(b.replicate, b.n_server_procs >= 2);
    a.replicate = b.replicate;  // the only field allowed to differ
    EXPECT_EQ(a.to_json(), b.to_json()) << "seed " << seed;
  }
}

TEST(ScenarioGen, OverloadDrawsDoNotPerturbPriorSampling) {
  // The overload knobs are sampled after every pre-existing draw
  // (including the replication draws), so a seed's topology, fault plan,
  // and replication shape are identical with and without --overload-burst
  // — old failing seeds stay reproducible under the new sweep.
  ScenarioEnvelope off;
  ScenarioEnvelope on;
  on.force_overload_burst = true;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Scenario a = chaos::generate_scenario(seed, off);
    Scenario b = chaos::generate_scenario(seed, on);
    EXPECT_FALSE(a.overload);
    EXPECT_TRUE(b.overload);
    // The overload block (admission knobs + the client breaker riding on
    // the same appended draws) is the only part allowed to differ.
    a.overload = b.overload;
    a.overload_cfg = b.overload_cfg;
    a.resilience.breaker_threshold = b.resilience.breaker_threshold;
    a.resilience.breaker_cooldown = b.resilience.breaker_cooldown;
    EXPECT_EQ(a.to_json(), b.to_json()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Linearizability checker, on hand-built histories

// Builds event traces the way HistoryRecorder would emit them.
struct HistoryBuilder {
  std::vector<Event> ev;
  std::uint64_t next_seq = 1;

  // Invokes an op; returns its seq for the matching response/deadline.
  std::uint64_t inv(OpType op, std::uint64_t rank, sim::Tick at,
                    std::uint32_t client = 0) {
    Event e;
    e.type = EventType::kInvoke;
    e.client = client;
    e.seq = next_seq++;
    e.op = op;
    e.rank = rank;
    e.tick = at;
    ev.push_back(e);
    return e.seq;
  }

  void resp(std::uint64_t seq, RespStatus st, sim::Tick at,
            bool value_ok = true, std::uint32_t client = 0) {
    Event e;
    e.type = EventType::kResponse;
    e.client = client;
    e.seq = seq;
    e.status = st;
    e.value_ok = value_ok;
    e.tick = at;
    ev.push_back(e);
  }

  void deadline(std::uint64_t seq, sim::Tick at, std::uint32_t client = 0) {
    Event e;
    e.type = EventType::kDeadline;
    e.client = client;
    e.seq = seq;
    e.tick = at;
    ev.push_back(e);
  }

  CheckResult check(std::uint64_t preloaded = 0) const {
    return chaos::check_linearizability(ev, preloaded);
  }
};

TEST(Linearize, AcceptsSequentialHistory) {
  HistoryBuilder h;
  std::uint64_t s1 = h.inv(OpType::kGet, 0, 0);
  h.resp(s1, RespStatus::kNotFound, 10);
  std::uint64_t s2 = h.inv(OpType::kPut, 0, 20);
  h.resp(s2, RespStatus::kOk, 30);
  std::uint64_t s3 = h.inv(OpType::kGet, 0, 40);
  h.resp(s3, RespStatus::kOk, 50);
  std::uint64_t s4 = h.inv(OpType::kDelete, 0, 60);
  h.resp(s4, RespStatus::kOk, 70);
  std::uint64_t s5 = h.inv(OpType::kDelete, 0, 80);
  h.resp(s5, RespStatus::kNotFound, 90);
  CheckResult r = h.check();
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.inconclusive);
  EXPECT_EQ(r.stats.histories_checked, 1u);
  EXPECT_EQ(r.stats.ops_checked, 5u);
}

TEST(Linearize, PreloadedKeysStartPresent) {
  HistoryBuilder h;
  std::uint64_t s1 = h.inv(OpType::kGet, 0, 0);
  h.resp(s1, RespStatus::kOk, 10);
  // Rank 1 was NOT preloaded, so a GET hit with no prior PUT is a violation.
  std::uint64_t s2 = h.inv(OpType::kGet, 1, 0);
  h.resp(s2, RespStatus::kOk, 10);
  CheckResult r = h.check(/*preloaded=*/1);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violating_rank, 1u);
  EXPECT_FALSE(r.explanation.empty());
}

TEST(Linearize, AcceptsConcurrentOpsInEitherOrder) {
  // GET overlaps a PUT on a fresh key: kNotFound (GET first) and kOk
  // (PUT first) must both be accepted.
  for (RespStatus got : {RespStatus::kNotFound, RespStatus::kOk}) {
    HistoryBuilder h;
    std::uint64_t put = h.inv(OpType::kPut, 0, 0, /*client=*/0);
    std::uint64_t get = h.inv(OpType::kGet, 0, 5, /*client=*/1);
    h.resp(put, RespStatus::kOk, 20, true, 0);
    h.resp(get, got, 20, true, 1);
    CheckResult r = h.check();
    EXPECT_TRUE(r.ok) << "status " << static_cast<int>(got) << ": "
                      << r.explanation;
  }
}

TEST(Linearize, RejectsStaleReadAfterDelete) {
  HistoryBuilder h;
  std::uint64_t put = h.inv(OpType::kPut, 7, 0);
  h.resp(put, RespStatus::kOk, 10);
  std::uint64_t del = h.inv(OpType::kDelete, 7, 20);
  h.resp(del, RespStatus::kOk, 30);
  std::uint64_t get = h.inv(OpType::kGet, 7, 40);
  h.resp(get, RespStatus::kOk, 50);  // observes the deleted value
  CheckResult r = h.check();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violating_rank, 7u);
  EXPECT_NE(r.explanation.find("GET"), std::string::npos);
}

TEST(Linearize, RejectsCorruptPayload) {
  HistoryBuilder h;
  std::uint64_t get = h.inv(OpType::kGet, 0, 0);
  h.resp(get, RespStatus::kOk, 10, /*value_ok=*/false);
  CheckResult r = h.check(/*preloaded=*/1);
  EXPECT_FALSE(r.ok);
}

TEST(Linearize, PendingMutationMayApplyLate) {
  // A PUT retired at its deadline may still reach the server afterwards
  // ("maybe applied"), justifying a later GET hit...
  HistoryBuilder h;
  std::uint64_t put = h.inv(OpType::kPut, 0, 0);
  h.deadline(put, 100);
  std::uint64_t get = h.inv(OpType::kGet, 0, 200);
  h.resp(get, RespStatus::kOk, 210);
  CheckResult r = h.check();
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_EQ(r.stats.maybe_applied, 1u);

  // ...and equally may never have applied: a miss is legal too.
  HistoryBuilder h2;
  std::uint64_t put2 = h2.inv(OpType::kPut, 0, 0);
  h2.deadline(put2, 100);
  std::uint64_t get2 = h2.inv(OpType::kGet, 0, 200);
  h2.resp(get2, RespStatus::kNotFound, 210);
  EXPECT_TRUE(h2.check().ok);
}

TEST(Linearize, PendingMutationCannotApplyBeforeInvocation) {
  // The deadline-failed DELETE was invoked *after* the GET completed, so it
  // cannot explain the miss on a preloaded key.
  HistoryBuilder h;
  std::uint64_t get = h.inv(OpType::kGet, 0, 0);
  h.resp(get, RespStatus::kNotFound, 10);
  std::uint64_t del = h.inv(OpType::kDelete, 0, 50);
  h.deadline(del, 150);
  CheckResult r = h.check(/*preloaded=*/1);
  EXPECT_FALSE(r.ok);

  // Flip the order (DELETE invoked first, overlapping) and it is accepted.
  HistoryBuilder h2;
  std::uint64_t del2 = h2.inv(OpType::kDelete, 0, 0);
  h2.deadline(del2, 150);
  std::uint64_t get2 = h2.inv(OpType::kGet, 0, 20);
  h2.resp(get2, RespStatus::kNotFound, 30);
  EXPECT_TRUE(h2.check(/*preloaded=*/1).ok);
}

TEST(Linearize, KeysAreIndependent) {
  // A violation on one key names that key, untouched keys stay clean
  // (P-compositionality: the checker partitions by rank).
  HistoryBuilder h;
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    std::uint64_t put = h.inv(OpType::kPut, rank, rank * 100);
    h.resp(put, RespStatus::kOk, rank * 100 + 10);
  }
  std::uint64_t bad = h.inv(OpType::kGet, 2, 1000);
  h.resp(bad, RespStatus::kNotFound, 1010);  // no DELETE ever ran
  CheckResult r = h.check();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.violating_rank, 2u);
  EXPECT_EQ(r.stats.histories_checked, 4u);
}

// ---------------------------------------------------------------------------
// End-to-end: replay determinism and the vanilla sweep

TEST(ChaosRun, ReplayIsBitIdentical) {
  ScenarioEnvelope env;
  env.budget = sim::ms(1);
  Scenario sc = chaos::generate_scenario(3, env);
  chaos::RunOutcome a = chaos::run_scenario(sc);
  chaos::RunOutcome b = chaos::run_scenario(sc);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.applies, b.applies);
  ASSERT_GT(a.events, 0u);

  Scenario other = chaos::generate_scenario(4, env);
  chaos::RunOutcome c = chaos::run_scenario(other);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(ChaosRun, VanillaSweepIsLinearizable) {
  ScenarioEnvelope env;
  env.budget = sim::ms(1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    chaos::RunOutcome o = chaos::run_scenario(sc);
    EXPECT_FALSE(chaos::violation(o))
        << "seed " << seed << ": " << chaos::summarize(o) << "\n"
        << o.check.explanation;
    EXPECT_FALSE(o.check.inconclusive) << "seed " << seed;
    EXPECT_TRUE(o.counters.has("chaos.ops_checked"));
    EXPECT_TRUE(o.counters.has("fault.crashes"));
  }
}

// ---------------------------------------------------------------------------
// Failover under chaos: crash-primary sweeps stay linearizable, replays
// stay deterministic, and the planted replication-drop bug is caught.

TEST(ChaosRun, CrashPrimarySweepIsLinearizable) {
  // Every seed runs replicated and loses one shard primary mid-window; the
  // checker holds the promoted backup to every previously acked write,
  // including the maybe-applied ops in flight at the crash.
  ScenarioEnvelope env;
  env.budget = sim::ms(1);
  env.force_crash_primary = true;
  env.min_server_procs = 2;
  std::uint64_t promotions = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    chaos::RunOutcome o = chaos::run_scenario(sc);
    EXPECT_FALSE(chaos::violation(o))
        << "seed " << seed << ": " << chaos::summarize(o) << "\n"
        << o.check.explanation;
    EXPECT_FALSE(o.check.inconclusive) << "seed " << seed;
    promotions += o.run.promotions;
  }
  // The mode is pointless unless promotions actually happen in-window.
  EXPECT_GT(promotions, 0u);
}

TEST(ChaosRun, CrashPrimaryReplayIsBitIdentical) {
  ScenarioEnvelope env;
  env.budget = sim::ms(1);
  env.force_crash_primary = true;
  env.min_server_procs = 2;
  Scenario sc = chaos::generate_scenario(5, env);
  chaos::RunOutcome a = chaos::run_scenario(sc);
  chaos::RunOutcome b = chaos::run_scenario(sc);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.applies, b.applies);
  ASSERT_GT(a.events, 0u);
}

TEST(ChaosRun, DropReplicationCanaryCaught) {
  // The planted bug: primaries ack mutations without forwarding them, so a
  // promotion serves from a backup that missed acked writes (a lost DELETE
  // resurrects its key; the stale read is the smoking gun). At least one
  // crash-primary seed must trip the checker — if this sweep ever comes
  // back clean, the checker has gone blind to replication bugs and the CI
  // canary job is worthless.
  ScenarioEnvelope env;
  env.force_crash_primary = true;
  env.min_server_procs = 2;
  env.drop_replication = true;
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 12 && !caught; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    EXPECT_TRUE(sc.drop_replication);
    chaos::RunOutcome o = chaos::run_scenario(sc);
    if (chaos::violation(o)) {
      caught = true;
      EXPECT_FALSE(o.check.explanation.empty());
    }
  }
  EXPECT_TRUE(caught)
      << "no seed in 1..12 tripped the planted replication-drop bug";
}

// ---------------------------------------------------------------------------
// The acceptance gate: an injected dedup bug is caught and shrunk

TEST(ChaosRun, BrokenDedupCaughtAndShrunk) {
  // Disabling the duplicate-suppression cache makes a retried mutation whose
  // response was lost apply twice; under fault schedules with losses the
  // checker must catch the resulting history. Sweep a few seeds — at least
  // one must fail, and its fault plan must shrink to <= 2 windows.
  ScenarioEnvelope env;
  chaos::RunOutcome failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 12 && !found; ++seed) {
    Scenario sc = chaos::generate_scenario(seed, env);
    sc.break_dedup = true;
    chaos::RunOutcome o = chaos::run_scenario(sc);
    if (chaos::violation(o)) {
      failing = o;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..12 tripped the injected dedup bug";
  EXPECT_FALSE(failing.check.explanation.empty());

  chaos::ShrinkResult sr = chaos::shrink(failing.scenario, /*max_runs=*/48);
  EXPECT_LE(sr.faults_after, 2u) << "shrunk plan still has "
                                 << sr.faults_after << " fault windows";
  EXPECT_LE(sr.faults_after, sr.faults_before);
  EXPECT_LE(sr.clients_after, sr.clients_before);
  ASSERT_GT(sr.runs, 0u);

  // The minimized scenario must still reproduce the violation — that is the
  // shrinker's contract (every accepted candidate re-ran and still failed).
  chaos::RunOutcome repro = chaos::run_scenario(sr.minimal);
  EXPECT_TRUE(chaos::violation(repro)) << chaos::summarize(repro);

  // And it is a complete bug report: emitting the plan as JSON/C++ works.
  EXPECT_FALSE(fault::to_json(sr.minimal.plan).empty());
  EXPECT_FALSE(fault::to_cpp(sr.minimal.plan).empty());
}

// ---------------------------------------------------------------------------
// Trace propagation under chaos: the wire-level trace id must survive the
// same fault schedules the linearizability checker exercises. The chaos
// harness itself does not export traces (RunOutcome is a checker verdict),
// so these tests script the crash-primary shape directly on a testbed.

// A replicated 2-process deployment with wire-level trace ids, a scripted
// primary crash mid-run, and failover tuned to fire well inside the window.
core::TestbedConfig crash_primary_traced(sim::Tick crash_at) {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 6;
  cfg.herd.window = 1;
  cfg.herd.request_tokens = true;
  cfg.herd.replicate = true;
  cfg.herd.trace = true;
  cfg.trace_sample_every = 16;
  cfg.herd.mica.bucket_count_log2 = 13;
  cfg.herd.mica.log_bytes = 8u << 20;
  cfg.workload.n_keys = 2048;
  cfg.workload.get_fraction = 0.50;
  cfg.workload.value_len = 32;
  cfg.resilience.retry_timeout = sim::us(30);
  cfg.resilience.backoff_multiplier = 2.0;
  cfg.resilience.backoff_max = sim::us(120);
  cfg.resilience.jitter = 0.2;
  cfg.resilience.deadline = sim::ms(1);
  cfg.resilience.failover_threshold = 3;
  cfg.resilience.probe_interval = sim::ms(1);
  cfg.seed = 7;
  cfg.fault_plan.proc_crash.push_back(fault::ProcCrashFault{0, crash_at, 0});
  return cfg;
}

TEST(ChaosTrace, ReplayExportsBitIdenticalTraceBytes) {
  // Determinism must extend to the trace itself: two runs of the same
  // crash-primary schedule export byte-identical Chrome JSON, so a replayed
  // chaos failure can be diffed span-by-span against the original.
  auto run = [] {
    core::HerdTestbed bed(crash_primary_traced(sim::us(300)));
    bed.run(sim::us(200), sim::us(800));
    return bed.trace_json();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  ASSERT_GT(a.size(), 2u);
  EXPECT_TRUE(obs::validate_trace_json(obs::Json::parse(a)).empty());
}

TEST(ChaosTrace, SingleTraceIdSurvivesPrimaryCrashAndFailover) {
  // Crash the primary mid-measure. Sampled requests caught by the crash are
  // re-sent to the backup after the failure detector trips; the re-send is a
  // hop of the SAME trace, so one trace id must appear on both a client
  // track and more than one server proc track, with every span still paired.
  core::HerdTestbed bed(crash_primary_traced(sim::us(300)));
  auto r = bed.run(sim::us(200), sim::us(800));
  ASSERT_GT(r.failovers, 0u);
  ASSERT_GT(r.promotions, 0u);
  EXPECT_EQ(bed.tracer().open_spans(), 0u);

  obs::Json doc = obs::Json::parse(bed.trace_json());
  EXPECT_TRUE(obs::validate_trace_json(doc).empty());

  std::map<double, std::string> tracks;
  std::map<std::string, std::set<std::string>> tracks_of;  // trace -> tracks
  for (const obs::Json& e : doc.find("traceEvents")->elements()) {
    const obs::Json* ph = e.find("ph");
    if (ph == nullptr) continue;
    if (ph->as_string() == "M") {
      const obs::Json* name = e.find("name");
      if (name != nullptr && name->as_string() == "thread_name") {
        tracks[e.find("tid")->as_double()] =
            e.find("args")->find("name")->as_string();
      }
      continue;
    }
    const obs::Json* args = e.find("args");
    const obs::Json* trace = args == nullptr ? nullptr : args->find("trace");
    if (trace == nullptr || trace->as_string() == "0x0") continue;
    tracks_of[trace->as_string()].insert(tracks[e.find("tid")->as_double()]);
  }
  ASSERT_FALSE(tracks_of.empty());

  // Tracks are "<fabric>/<host>/<unit>".
  bool crossed_failover = false;
  for (const auto& [id, tr] : tracks_of) {
    bool client = false;
    std::set<std::string> procs;
    for (const std::string& t : tr) {
      if (t.find("/client") != std::string::npos) client = true;
      if (t.find("/proc") != std::string::npos) procs.insert(t);
    }
    // One id, both ends of the wire, and served by two distinct processes:
    // the original primary before the crash, the promoted backup after.
    if (client && procs.size() >= 2) crossed_failover = true;
  }
  EXPECT_TRUE(crossed_failover)
      << "no sampled trace id spans a client track and two server procs";
}

}  // namespace
}  // namespace herd
