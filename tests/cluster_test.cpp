// Unit tests: cluster wiring and Table-2 presets.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace herd::cluster {
namespace {

TEST(ClusterConfig, AptPresetMatchesTable2) {
  auto cfg = ClusterConfig::apt();
  EXPECT_EQ(cfg.name, "Apt-IB");
  EXPECT_DOUBLE_EQ(cfg.fabric.link_gbps, 5.5);       // 56 Gbps FDR effective
  EXPECT_DOUBLE_EQ(cfg.pcie.dma_read_gbps, 6.5);     // PCIe 3.0 x8
  EXPECT_EQ(cfg.rnic.max_inline, 256u);              // "256 in our setup"
  EXPECT_EQ(cfg.rnic.max_outstanding_reads, 16u);    // "16 in our RNICs"
}

TEST(ClusterConfig, SusitnaPresetMatchesTable2) {
  auto cfg = ClusterConfig::susitna();
  EXPECT_EQ(cfg.name, "Susitna-RoCE");
  EXPECT_LT(cfg.fabric.link_gbps, ClusterConfig::apt().fabric.link_gbps);
  EXPECT_LT(cfg.pcie.dma_read_gbps, ClusterConfig::apt().pcie.dma_read_gbps);
  // Opteron cores are slower than the Xeon's.
  EXPECT_GT(cfg.cpu.post_send, ClusterConfig::apt().cpu.post_send);
}

TEST(Cluster, HostsGetDistinctPortsAndMemory) {
  Cluster cl(ClusterConfig::apt(), 4, 64 << 10);
  EXPECT_EQ(cl.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.host(i).port(), i);
    EXPECT_EQ(cl.host(i).memory().size(), 64u << 10);
    // Memory is private per host.
    cl.host(i).memory().span(0, 8)[0] = static_cast<std::byte>(i + 1);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.host(i).memory().span(0, 8)[0],
              static_cast<std::byte>(i + 1));
  }
}

TEST(Cluster, ContextsAreWiredToTheirHosts) {
  Cluster cl(ClusterConfig::apt(), 2, 64 << 10);
  EXPECT_EQ(&cl.host(0).ctx().memory(), &cl.host(0).memory());
  EXPECT_EQ(&cl.host(0).ctx().rnic(), &cl.host(0).rnic());
  EXPECT_EQ(cl.host(1).ctx().port(), 1u);
  EXPECT_EQ(&cl.host(0).ctx().engine(), &cl.engine());
}

TEST(Cluster, HostOutOfRangeThrows) {
  Cluster cl(ClusterConfig::apt(), 2, 4096);
  EXPECT_THROW(cl.host(5), std::out_of_range);
}

TEST(HostMemory, WatchesFireOnOverlappingDmaOnly) {
  verbs::HostMemory mem(4096);
  int hits = 0;
  int handle = mem.add_watch(100, 50, [&](std::uint64_t, std::uint32_t) {
    ++hits;
  });
  std::vector<std::byte> data(10, std::byte{1});
  mem.dma_apply(0, data);    // below the window
  EXPECT_EQ(hits, 0);
  mem.dma_apply(145, data);  // straddles the window end
  EXPECT_EQ(hits, 1);
  mem.dma_apply(120, data);  // inside
  EXPECT_EQ(hits, 2);
  mem.dma_apply(150, data);  // just past
  EXPECT_EQ(hits, 2);
  mem.remove_watch(handle);
  mem.dma_apply(120, data);
  EXPECT_EQ(hits, 2);
}

TEST(HostMemory, SpanBoundsChecked) {
  verbs::HostMemory mem(1024);
  EXPECT_NO_THROW(mem.span(0, 1024));
  EXPECT_THROW(mem.span(1, 1024), std::out_of_range);
  EXPECT_THROW(mem.span(1024, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Core-to-QP affinity (EREW partitioning, Fig. 13).

TEST(CoreAffinityMap, RoundRobinDealsQpsEvenly) {
  auto m = CoreAffinityMap::round_robin(4, 10);
  EXPECT_EQ(m.n_cores(), 4u);
  EXPECT_EQ(m.n_qps(), 10u);
  for (std::uint32_t q = 0; q < 10; ++q) {
    EXPECT_EQ(m.core_of(q), q % 4);
    EXPECT_TRUE(m.owns(q % 4, q));
  }
  // Every QP appears exactly once across the per-core lists.
  std::uint32_t total = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint32_t q : m.qps_of(c)) {
      EXPECT_EQ(q % 4, c);
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(CoreAffinityMap, OneQpPerCoreIsTheIdentityMap) {
  auto m = CoreAffinityMap::round_robin(6, 6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(m.owns(i, i));
    ASSERT_EQ(m.qps_of(i).size(), 1u);
    EXPECT_EQ(m.qps_of(i).front(), i);
  }
  EXPECT_FALSE(m.owns(0, 1));  // EREW: no cross-core sharing
}

TEST(CoreAffinityMap, RejectsZeroCoresAndBoundsChecks) {
  EXPECT_THROW(CoreAffinityMap::round_robin(0, 4), std::invalid_argument);
  auto m = CoreAffinityMap::round_robin(2, 4);
  EXPECT_THROW(m.core_of(4), std::out_of_range);
  EXPECT_THROW(m.qps_of(2), std::out_of_range);
  EXPECT_FALSE(m.owns(0, 99));  // out-of-range QP is owned by nobody
}

}  // namespace
}  // namespace herd::cluster
