// Contract-checker tests: one deliberate violation per rule asserting the
// exact diagnostic and counter, fail-fast semantics, the unsignaled CQ
// arithmetic, and clean runs over the full HERD integration flows.
#include <gtest/gtest.h>

#include <string>

#include "baselines/emulated_kv.hpp"
#include "cluster/cluster.hpp"
#include "herd/testbed.hpp"
#include "microbench/echo.hpp"
#include "verbs/contract.hpp"
#include "verbs/verbs.hpp"

namespace herd::verbs {
namespace {

class ContractTest : public ::testing::Test {
 protected:
  ContractTest() : cl_(cluster::ClusterConfig::apt(), 3, 1u << 20) {
    for (std::size_t i = 0; i < cl_.size(); ++i) {
      cl_.host(i).ctx().enable_contract(ContractChecker::Mode::kCollect);
    }
  }

  struct Endpoint {
    std::unique_ptr<Cq> scq;
    std::unique_ptr<Cq> rcq;
    std::unique_ptr<Qp> qp;
    Mr mr{};
  };

  Endpoint make(std::size_t host, Transport tr, QpAttr attr = {}) {
    Endpoint e;
    auto& ctx = cl_.host(host).ctx();
    e.scq = ctx.create_cq();
    e.rcq = ctx.create_cq();
    attr.transport = tr;
    attr.send_cq = e.scq.get();
    attr.recv_cq = e.rcq.get();
    e.qp = ctx.create_qp(attr);
    e.mr = ctx.register_mr(0, 64 << 10,
                           {.remote_write = true, .remote_read = true});
    return e;
  }

  ContractChecker& checker(std::size_t host) {
    return *cl_.host(host).ctx().contract();
  }

  /// The single retained violation's formatted diagnostic.
  std::string only_diagnostic(std::size_t host) {
    const auto& v = checker(host).violations();
    EXPECT_EQ(v.size(), 1u);
    return v.empty() ? std::string() : v.back().format();
  }

  cluster::Cluster cl_;
};

// ---------------------------------------------------------------------------
// Rule 1: opcode-vs-transport (Table 1).

TEST_F(ContractTest, FlagsReadOnUc) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  SendWr wr;
  wr.wr_id = 3;
  wr.opcode = Opcode::kRead;
  wr.sge = {0, 32, a.mr.lkey};
  wr.rkey = b.mr.rkey;
  // The model still rejects the post; the checker records it first.
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kOpcodeTransport), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[opcode-vs-transport] qp 1 wr 3: READ on a UC QP (Table 1)");
}

TEST_F(ContractTest, FlagsWriteOnUd) {
  auto a = make(0, Transport::kUd);
  SendWr wr;
  wr.wr_id = 4;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 32, a.mr.lkey};
  wr.ah = Ah{&cl_.host(1).ctx(), 1};
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kOpcodeTransport), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[opcode-vs-transport] qp 1 wr 4: WRITE on a UD QP (Table 1)");
}

// ---------------------------------------------------------------------------
// Rule 2: missing address handle on a UD SEND.

TEST_F(ContractTest, FlagsUdSendWithoutAh) {
  auto a = make(0, Transport::kUd);
  SendWr wr;
  wr.wr_id = 5;
  wr.sge = {0, 32, a.mr.lkey};
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kMissingAh), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[missing-ah] qp 1 wr 5: UD SEND without an address handle");
}

// ---------------------------------------------------------------------------
// Rule 3: posting on an unconnected RC/UC QP.

TEST_F(ContractTest, FlagsUnconnectedPost) {
  auto a = make(0, Transport::kRc);
  SendWr wr;
  wr.wr_id = 6;
  wr.sge = {0, 32, a.mr.lkey};
  EXPECT_THROW(a.qp->post_send(wr), std::logic_error);
  EXPECT_EQ(checker(0).count(ContractRule::kNotConnected), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[not-connected] qp 1 wr 6: posted to an unconnected RC/UC QP");
}

// ---------------------------------------------------------------------------
// Rule 4: inline payload larger than max_inline_data.

TEST_F(ContractTest, FlagsOversizedInline) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.wr_id = 7;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 512, a.mr.lkey};
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kInlineTooLarge), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[inline-too-large] qp 1 wr 7: inline 512 B > max_inline 256 B");
}

// ---------------------------------------------------------------------------
// Rule 5: inline flag on a READ.

TEST_F(ContractTest, FlagsInlineRead) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.wr_id = 8;
  wr.opcode = Opcode::kRead;
  wr.sge = {0, 32, a.mr.lkey};
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kInlineRead), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[inline-read] qp 1 wr 8: inline flag on a READ "
            "(READs carry no payload)");
}

// ---------------------------------------------------------------------------
// Rule 6: SGE outside any registered MR, both queue directions.

TEST_F(ContractTest, FlagsSendSgeOutsideMr) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.wr_id = 9;
  wr.sge = {0, 32, 0xbad};
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kSgeBounds), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[sge-bounds] qp 1 wr 9: send SGE [0, +32) not covered by "
            "lkey 2989");
}

TEST_F(ContractTest, FlagsRecvSgeOutsideMr) {
  auto b = make(1, Transport::kRc);
  EXPECT_THROW(b.qp->post_recv({.wr_id = 10, .sge = {0, 64, 0xbad}}),
               std::invalid_argument);
  EXPECT_EQ(checker(1).count(ContractRule::kSgeBounds), 1u);
  EXPECT_EQ(only_diagnostic(1),
            "[sge-bounds] qp 1 wr 10: recv SGE [0, +64) not covered by "
            "lkey 2989");
}

// ---------------------------------------------------------------------------
// Rule 7: send queue deeper than its declared capacity.

TEST_F(ContractTest, FlagsSendQueueOverflow) {
  QpAttr attr;
  attr.max_send_wr = 2;
  auto a = make(0, Transport::kUc, attr);
  auto b = make(1, Transport::kUc, attr);
  a.qp->connect(*b.qp);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 32, a.mr.lkey};
  wr.rkey = b.mr.rkey;
  wr.signaled = false;
  // Two WQEs fill the declared queue; the third post exceeds it.
  a.qp->post_send(wr);
  a.qp->post_send(wr);
  wr.wr_id = 11;
  a.qp->post_send(wr);
  EXPECT_EQ(checker(0).count(ContractRule::kSendQueueOverflow), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[send-queue-overflow] qp 1 wr 11: 2 WQEs in flight >= "
            "max_send_wr 2");

  // Retired WQEs free their slots: after the device drains, posting is
  // legal again.
  cl_.engine().run();
  a.qp->post_send(wr);
  EXPECT_EQ(checker(0).count(ContractRule::kSendQueueOverflow), 1u);
}

// ---------------------------------------------------------------------------
// Rule 8: receive queue deeper than its declared capacity.

TEST_F(ContractTest, FlagsRecvQueueOverflow) {
  QpAttr attr;
  attr.max_recv_wr = 2;
  auto b = make(1, Transport::kRc, attr);
  b.qp->post_recv({.wr_id = 1, .sge = {0, 64, b.mr.lkey}});
  b.qp->post_recv({.wr_id = 2, .sge = {64, 64, b.mr.lkey}});
  b.qp->post_recv({.wr_id = 12, .sge = {128, 64, b.mr.lkey}});
  EXPECT_EQ(checker(1).count(ContractRule::kRecvQueueOverflow), 1u);
  EXPECT_EQ(only_diagnostic(1),
            "[recv-queue-overflow] qp 1 wr 12: 2 RECVs queued >= "
            "max_recv_wr 2");
}

// ---------------------------------------------------------------------------
// Rule 9: CQ overrun — the signaling arithmetic.

TEST_F(ContractTest, FlagsCqOverrunFromSignaledBacklog) {
  auto& ctx = cl_.host(0).ctx();
  auto& ctx_b = cl_.host(1).ctx();
  auto scq = ctx.create_cq(/*capacity=*/2);
  auto rcq = ctx.create_cq();
  auto bs = ctx_b.create_cq();
  auto br = ctx_b.create_cq();
  auto qp = ctx.create_qp({Transport::kUc, scq.get(), rcq.get()});
  auto bqp = ctx_b.create_qp({Transport::kUc, bs.get(), br.get()});
  qp->connect(*bqp);
  Mr mr = ctx.register_mr(0, 4096, {});
  Mr bmr = ctx_b.register_mr(0, 4096, {.remote_write = true});

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 16, mr.lkey};
  wr.rkey = bmr.rkey;
  wr.signaled = true;
  // Two signaled WRs reserve both CQE slots; the third can overrun the CQ.
  qp->post_send(wr);
  qp->post_send(wr);
  wr.wr_id = 13;
  qp->post_send(wr);
  EXPECT_EQ(checker(0).count(ContractRule::kCqOverrun), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[cq-overrun] qp 1 wr 13: send CQ holds 0 CQEs + 2 reserved >= "
            "capacity 2");
}

TEST_F(ContractTest, UnsignaledVerbsReserveNoCqSlots) {
  // HERD's recipe: a tiny CQ is fine when WRs are unsignaled, because they
  // never produce CQEs. 64 posts into a capacity-2 CQ must stay clean.
  auto& ctx = cl_.host(0).ctx();
  auto& ctx_b = cl_.host(1).ctx();
  auto scq = ctx.create_cq(/*capacity=*/2);
  auto rcq = ctx.create_cq();
  auto bs = ctx_b.create_cq();
  auto br = ctx_b.create_cq();
  auto qp = ctx.create_qp({Transport::kUc, scq.get(), rcq.get()});
  auto bqp = ctx_b.create_qp({Transport::kUc, bs.get(), br.get()});
  qp->connect(*bqp);
  Mr mr = ctx.register_mr(0, 4096, {});
  Mr bmr = ctx_b.register_mr(0, 4096, {.remote_write = true});

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 16, mr.lkey};
  wr.rkey = bmr.rkey;
  wr.signaled = false;
  wr.inline_data = true;
  for (int i = 0; i < 64; ++i) {
    qp->post_send(wr);
    cl_.engine().run();
  }
  EXPECT_EQ(checker(0).total(), 0u);
}

// ---------------------------------------------------------------------------
// Rule 10: UD RECV without GRH headroom.

TEST_F(ContractTest, FlagsUdRecvWithoutGrhRoom) {
  auto a = make(0, Transport::kUd);
  // 32 B < the 40 B GRH the RNIC prepends: any arriving SEND would fail
  // with a local-length error (or scribble, on real hardware).
  a.qp->post_recv({.wr_id = 14, .sge = {0, 32, a.mr.lkey}});
  EXPECT_EQ(checker(0).count(ContractRule::kUdRecvNoGrhRoom), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[ud-recv-no-grh-room] qp 1 wr 14: UD RECV buffer 32 B < 40 B "
            "GRH");
}

// ---------------------------------------------------------------------------
// Rule 11: posting to a QP that has left RTS (error state).

TEST_F(ContractTest, FlagsPostToErroredQp) {
  cluster::ClusterConfig cfg = cluster::ClusterConfig::apt();
  cfg.fabric.loss_probability = 1.0;  // every attempt lost: RC errors out
  cluster::Cluster cl(cfg, 2, 64 << 10);
  auto& ctx = cl.host(0).ctx();
  auto& ctx_b = cl.host(1).ctx();
  ContractChecker& ck = ctx.enable_contract(ContractChecker::Mode::kCollect);

  auto scq = ctx.create_cq();
  auto rcq = ctx.create_cq();
  auto bs = ctx_b.create_cq();
  auto br = ctx_b.create_cq();
  auto qp = ctx.create_qp({Transport::kRc, scq.get(), rcq.get()});
  auto bqp = ctx_b.create_qp({Transport::kRc, bs.get(), br.get()});
  qp->connect(*bqp);
  Mr mr = ctx.register_mr(0, 4096, {});
  Mr bmr = ctx_b.register_mr(0, 4096, {.remote_write = true});

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 16, mr.lkey};
  wr.rkey = bmr.rkey;
  qp->post_send(wr);
  cl.engine().run();
  ASSERT_EQ(qp->state(), QpState::kError);
  EXPECT_EQ(ck.total(), 0u);  // the *transition* is not an app violation

  wr.wr_id = 15;
  qp->post_send(wr);  // flushes — and is flagged
  EXPECT_EQ(ck.count(ContractRule::kQpNotReady), 1u);
  EXPECT_EQ(ck.violations().back().format(),
            "[qp-not-ready] qp 1 wr 15: post_send on a QP in the error "
            "state (WR will flush)");

  qp->post_recv({.wr_id = 16, .sge = {0, 64, mr.lkey}});
  EXPECT_EQ(ck.count(ContractRule::kQpNotReady), 2u);
  EXPECT_EQ(ck.violations().back().format(),
            "[qp-not-ready] qp 1 wr 16: post_recv on a QP in the error "
            "state (WR will flush)");

  // Re-arming (ERR -> RESET -> ... -> RTS) makes posting legal again.
  qp->reset();
  std::uint64_t before = ck.total();
  qp->post_send(wr);
  EXPECT_EQ(ck.total(), before);
}

// ---------------------------------------------------------------------------
// Rule 12: degenerate MR registration.

TEST_F(ContractTest, FlagsZeroLengthMr) {
  cl_.host(0).ctx().register_mr(128, 0, {});
  EXPECT_EQ(checker(0).count(ContractRule::kMrInvalid), 1u);
  EXPECT_EQ(only_diagnostic(0),
            "[mr-invalid] qp 0 wr 0: zero-length MR registration at addr "
            "128");
}

// ---------------------------------------------------------------------------
// Fail-fast mode throws ContractError at the post site, before the model
// acts, carrying the same diagnostic.

TEST_F(ContractTest, FailFastThrowsContractError) {
  checker(0).set_mode(ContractChecker::Mode::kFailFast);
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.wr_id = 7;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 512, a.mr.lkey};
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  try {
    a.qp->post_send(wr);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_STREQ(e.what(),
                 "[inline-too-large] qp 1 wr 7: inline 512 B > max_inline "
                 "256 B");
    EXPECT_EQ(e.violation().rule, ContractRule::kInlineTooLarge);
    EXPECT_EQ(e.violation().qpn, 1u);
    EXPECT_EQ(e.violation().wr_id, 7u);
  }
  // The violation is also counted, and the rejected WR reserved nothing.
  EXPECT_EQ(checker(0).count(ContractRule::kInlineTooLarge), 1u);
}

// ---------------------------------------------------------------------------
// Counter surfacing.

TEST_F(ContractTest, CountsRulesIndividually) {
  auto a = make(0, Transport::kUd);
  a.qp->post_recv({.wr_id = 1, .sge = {0, 8, a.mr.lkey}});
  a.qp->post_recv({.wr_id = 2, .sge = {8, 8, a.mr.lkey}});
  EXPECT_EQ(checker(0).count(ContractRule::kUdRecvNoGrhRoom), 2u);
  EXPECT_EQ(checker(0).count(ContractRule::kCqOverrun), 0u);
  EXPECT_EQ(checker(0).total(), 2u);
}

// ---------------------------------------------------------------------------
// Clean runs: the full HERD integration flows must not violate any rule.

core::TestbedConfig small_testbed(core::RequestMode mode) {
  core::TestbedConfig cfg;
  cfg.herd.mode = mode;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.window = 4;
  cfg.workload.n_keys = 512;
  cfg.workload.get_fraction = 0.7;
  cfg.verify_values = true;
  return cfg;
}

TEST(ContractCleanRun, WriteUcModeIsViolationFree) {
  core::HerdTestbed bed(small_testbed(core::RequestMode::kWriteUc));
  auto r = bed.run(sim::us(200), sim::ms(2));
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(bed.contract_violations(), 0u) << bed.contract_diagnostics();
}

TEST(ContractCleanRun, SendUdModeIsViolationFree) {
  core::HerdTestbed bed(small_testbed(core::RequestMode::kSendUd));
  auto r = bed.run(sim::us(200), sim::ms(2));
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(bed.contract_violations(), 0u) << bed.contract_diagnostics();
}

TEST(ContractCleanRun, ResilientLossyRunIsViolationFree) {
  core::TestbedConfig cfg = small_testbed(core::RequestMode::kWriteUc);
  cfg.cluster.fabric.loss_probability = 0.005;
  cfg.herd.request_tokens = true;
  cfg.resilience.retry_timeout = sim::us(60);
  core::HerdTestbed bed(cfg);
  auto r = bed.run(sim::us(200), sim::ms(2));
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(bed.contract_violations(), 0u) << bed.contract_diagnostics();
}

TEST(ContractCleanRun, BaselineSystemsAreViolationFree) {
  for (auto sys : {baselines::System::kPilafEmOpt, baselines::System::kFarmEm,
                   baselines::System::kFarmEmVar}) {
    baselines::EmulatedConfig cfg;
    cfg.system = sys;
    cfg.n_server_procs = 2;
    cfg.n_clients = 6;
    cfg.get_fraction = 0.5;
    baselines::EmulatedKvTestbed bed(cfg);
    auto r = bed.run(sim::ms(1), sim::ms(2));
    EXPECT_GT(r.ops, 0u) << baselines::system_name(sys);
    EXPECT_EQ(bed.cluster().contract_violations(), 0u)
        << baselines::system_name(sys) << "\n"
        << bed.cluster().contract_diagnostics();
  }
}

// The microbench drivers call cluster::require_contract_clean() before
// reporting, so a latent misuse throws instead of skewing the number.
// Cover the fully-signaled basic rung, which is where the echo fixture's
// unreaped send CQEs used to overrun the CQ.
TEST(ContractCleanRun, SignaledEchoBenchIsViolationFree) {
  microbench::EchoOpts opts;
  opts.opt_level = 0;
  opts.n_server_procs = 2;
  opts.n_clients = 6;
  opts.window = 4;
  EXPECT_NO_THROW(microbench::echo_tput(cluster::ClusterConfig::apt(),
                                        microbench::EchoKind::kSendSend,
                                        opts, sim::ms(1)));
}

// ---------------------------------------------------------------------------
// Chain rules: WR chains must fit the send queue, reserve their CQEs up
// front, and carry no transport-illegal opcode hidden past position 0.

TEST_F(ContractTest, FlagsChainLongerThanSendQueue) {
  QpAttr attr;
  attr.max_send_wr = 4;
  auto a = make(0, Transport::kUc, attr);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  std::vector<SendWr> chain(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = 40 + i;
    chain[i].sge = {0, 32, a.mr.lkey};
    chain[i].remote_addr = 4096;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = false;
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  EXPECT_EQ(checker(0).count(ContractRule::kChainTooLong), 1u);
  EXPECT_EQ(checker(0).violations().front().format(),
            "[chain-too-long] qp 1 wr 40: chain of 8 WRs + 0 in flight > "
            "max_send_wr 4");
}

TEST_F(ContractTest, FlagsChainCqeDemandOverCqCapacity) {
  auto& ctx = cl_.host(0).ctx();
  auto scq = ctx.create_cq(/*capacity=*/2);
  auto rcq = ctx.create_cq();
  auto qp = ctx.create_qp({Transport::kUc, scq.get(), rcq.get()});
  auto mr = ctx.register_mr(0, 64 << 10, {});
  auto b = make(1, Transport::kUc);
  qp->connect(*b.qp);

  std::vector<SendWr> chain(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = 50 + i;
    chain[i].sge = {0, 32, mr.lkey};
    chain[i].remote_addr = 4096;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = true;  // all four claim a CQE on a 2-slot CQ
  }
  qp->post_send(std::span<const SendWr>(chain));
  EXPECT_EQ(checker(0).count(ContractRule::kChainCqOverrun), 1u);
  EXPECT_EQ(checker(0).violations().front().format(),
            "[chain-cq-overrun] qp 1 wr 50: chain reserves 4 CQEs on a "
            "send CQ holding 0 + 0 reserved of capacity 2");
}

TEST_F(ContractTest, FlagsIllegalOpcodeHiddenMidChain) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  std::vector<SendWr> chain(2);
  chain[0].opcode = Opcode::kWrite;
  chain[0].wr_id = 60;
  chain[0].sge = {0, 32, a.mr.lkey};
  chain[0].remote_addr = 4096;
  chain[0].rkey = b.mr.rkey;
  chain[0].signaled = false;
  chain[1].opcode = Opcode::kRead;  // Table 1: no READ on UC — hidden at 1
  chain[1].wr_id = 61;
  chain[1].sge = {0, 32, a.mr.lkey};
  chain[1].remote_addr = 4096;
  chain[1].rkey = b.mr.rkey;

  // The chain hook records at chain-build time; sequential posting then
  // rejects the READ itself (per-WR Table 1 rule) after the legal prefix.
  EXPECT_THROW(a.qp->post_send(std::span<const SendWr>(chain)),
               std::invalid_argument);
  EXPECT_EQ(checker(0).count(ContractRule::kChainOpcodeHidden), 1u);
  EXPECT_EQ(checker(0).violations().front().format(),
            "[chain-opcode-hidden] qp 1 wr 61: READ hidden at chain "
            "position 1 on a UC QP (Table 1)");
}

TEST_F(ContractTest, ChainOfOneUsesOnlyPerWrRules) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 32, a.mr.lkey};
  wr.remote_addr = 4096;
  wr.rkey = b.mr.rkey;
  wr.signaled = true;
  a.qp->post_send(std::span<const SendWr>(&wr, 1));
  cl_.engine().run();
  EXPECT_EQ(checker(0).count(ContractRule::kChainTooLong), 0u);
  EXPECT_EQ(checker(0).count(ContractRule::kChainCqOverrun), 0u);
  EXPECT_EQ(checker(0).count(ContractRule::kChainOpcodeHidden), 0u);
  EXPECT_TRUE(checker(0).violations().empty());
}

}  // namespace
}  // namespace herd::verbs
