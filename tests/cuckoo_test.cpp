// Unit + property tests: Pilaf's self-verifying 3-1 cuckoo table.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kv/cuckoo.hpp"
#include "sim/rng.hpp"
#include "workload/workload.hpp"

namespace herd::kv {
namespace {

struct Table {
  std::vector<std::byte> bucket_mem;
  std::vector<std::byte> extent_mem;
  std::unique_ptr<PilafCuckooTable> t;

  explicit Table(std::uint32_t n_buckets = 4096,
                 std::size_t extents = 1 << 20) {
    bucket_mem.resize(PilafCuckooTable::bucket_mem_bytes(n_buckets));
    extent_mem.resize(extents);
    PilafCuckooTable::Config cfg;
    cfg.n_buckets = n_buckets;
    t = std::make_unique<PilafCuckooTable>(bucket_mem, extent_mem, cfg);
  }
};

std::vector<std::byte> value_of(std::uint64_t rank, std::uint32_t len) {
  std::vector<std::byte> v(len);
  workload::WorkloadGenerator::fill_value(rank, v);
  return v;
}

TEST(Cuckoo, InsertGetRoundTrip) {
  Table tb;
  auto key = hash_of_rank(1);
  ASSERT_TRUE(tb.t->insert(key, value_of(1, 32)));
  std::byte out[64];
  auto g = tb.t->get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, 32u);
  auto expect = value_of(1, 32);
  EXPECT_EQ(std::memcmp(out, expect.data(), 32), 0);
}

TEST(Cuckoo, MissOnAbsent) {
  Table tb;
  std::byte out[8];
  EXPECT_FALSE(tb.t->get(hash_of_rank(5), out).found);
}

TEST(Cuckoo, OverwriteUpdatesInPlace) {
  Table tb;
  auto key = hash_of_rank(2);
  tb.t->insert(key, value_of(2, 16));
  tb.t->insert(key, value_of(9, 20));
  std::byte out[32];
  auto g = tb.t->get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, 20u);
  auto expect = value_of(9, 20);
  EXPECT_EQ(std::memcmp(out, expect.data(), 20), 0);
}

TEST(Cuckoo, EraseRemoves) {
  Table tb;
  auto key = hash_of_rank(3);
  tb.t->insert(key, value_of(3, 8));
  EXPECT_TRUE(tb.t->erase(key));
  EXPECT_FALSE(tb.t->erase(key));
  std::byte out[16];
  EXPECT_FALSE(tb.t->get(key, out).found);
}

TEST(Cuckoo, HandlesDisplacementsAtModerateLoad) {
  // Fill to ~60% of 4096 buckets: cuckoo kicks must occur and all keys
  // must remain retrievable.
  Table tb(4096, 4 << 20);
  constexpr std::uint64_t kKeys = 2400;
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    ASSERT_TRUE(tb.t->insert(hash_of_rank(r), value_of(r, 16)))
        << "failed at " << r;
  }
  EXPECT_GT(tb.t->stats().displacements, 0u);
  std::byte out[32];
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    auto g = tb.t->get(hash_of_rank(r), out);
    ASSERT_TRUE(g.found) << r;
    auto expect = value_of(r, 16);
    EXPECT_EQ(std::memcmp(out, expect.data(), 16), 0);
  }
}

TEST(Cuckoo, AverageProbesNearPaper) {
  // "1.6 average probes per GET" — ours must land in the same regime
  // (between 1 and 3 probes, under 2 at moderate load).
  Table tb(4096, 4 << 20);
  for (std::uint64_t r = 0; r < 2000; ++r) {
    tb.t->insert(hash_of_rank(r), value_of(r, 8));
  }
  std::byte out[16];
  for (std::uint64_t r = 0; r < 2000; ++r) {
    tb.t->get(hash_of_rank(r), out);
  }
  EXPECT_GE(tb.t->average_probes(), 1.0);
  EXPECT_LT(tb.t->average_probes(), 2.0);
}

TEST(Cuckoo, CandidateOffsetsWithinTableAndAligned) {
  Table tb(1024);
  for (std::uint64_t r = 0; r < 200; ++r) {
    auto offs = tb.t->candidate_offsets(hash_of_rank(r));
    for (auto o : offs) {
      EXPECT_LT(o, PilafCuckooTable::bucket_mem_bytes(1024));
      EXPECT_EQ(o % PilafCuckooTable::kBucketBytes, 0u);
    }
  }
}

TEST(Cuckoo, RemoteProtocolVerifiesFetchedBucket) {
  // A Pilaf client READs raw bucket bytes and verifies them — simulate by
  // slicing the bucket memory directly.
  Table tb;
  auto key = hash_of_rank(11);
  tb.t->insert(key, value_of(11, 48));
  auto offs = tb.t->candidate_offsets(key);
  std::optional<PilafCuckooTable::BucketView> view;
  for (auto o : offs) {
    view = PilafCuckooTable::verify_bucket(
        std::span<const std::byte>(tb.bucket_mem).subspan(o, 32), key);
    if (view) break;
  }
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->value_len, 48u);
  auto ext = std::span<const std::byte>(tb.extent_mem)
                 .subspan(view->extent_offset,
                          PilafCuckooTable::kExtentHeader + view->value_len);
  auto val = PilafCuckooTable::verify_extent(ext, key, view->value_len);
  ASSERT_TRUE(val.has_value());
  auto expect = value_of(11, 48);
  EXPECT_EQ(std::memcmp(val->data(), expect.data(), 48), 0);
}

TEST(Cuckoo, ChecksumDetectsCorruptBucket) {
  // Self-verification (the paper's "two 64-bit checksums"): a torn or
  // corrupted bucket read must be rejected, not misparsed.
  Table tb;
  auto key = hash_of_rank(12);
  tb.t->insert(key, value_of(12, 16));
  auto offs = tb.t->candidate_offsets(key);
  for (auto o : offs) {
    auto raw = std::span<std::byte>(tb.bucket_mem).subspan(o, 32);
    if (!PilafCuckooTable::verify_bucket(raw, key)) continue;
    raw[18] ^= std::byte{0xff};  // flip a bit in the extent offset
    EXPECT_FALSE(PilafCuckooTable::verify_bucket(raw, key).has_value());
    raw[18] ^= std::byte{0xff};  // restore
    EXPECT_TRUE(PilafCuckooTable::verify_bucket(raw, key).has_value());
    return;
  }
  FAIL() << "key not found in any candidate bucket";
}

TEST(Cuckoo, ChecksumDetectsCorruptExtent) {
  Table tb;
  auto key = hash_of_rank(13);
  tb.t->insert(key, value_of(13, 32));
  auto offs = tb.t->candidate_offsets(key);
  for (auto o : offs) {
    auto view = PilafCuckooTable::verify_bucket(
        std::span<const std::byte>(tb.bucket_mem).subspan(o, 32), key);
    if (!view) continue;
    auto ext = std::span<std::byte>(tb.extent_mem)
                   .subspan(view->extent_offset,
                            PilafCuckooTable::kExtentHeader + 32);
    ext[PilafCuckooTable::kExtentHeader] ^= std::byte{1};  // corrupt value
    EXPECT_FALSE(
        PilafCuckooTable::verify_extent(ext, key, 32).has_value());
    return;
  }
  FAIL();
}

TEST(Cuckoo, EmptyBucketNeverVerifies) {
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_FALSE(
      PilafCuckooTable::verify_bucket(zeros, hash_of_rank(1)).has_value());
}

TEST(Cuckoo, WrongKeyNeverVerifies) {
  Table tb;
  auto key = hash_of_rank(14);
  tb.t->insert(key, value_of(14, 8));
  auto offs = tb.t->candidate_offsets(key);
  for (auto o : offs) {
    auto raw = std::span<const std::byte>(tb.bucket_mem).subspan(o, 32);
    if (PilafCuckooTable::verify_bucket(raw, key)) {
      EXPECT_FALSE(
          PilafCuckooTable::verify_bucket(raw, hash_of_rank(99)).has_value());
      return;
    }
  }
  FAIL();
}

TEST(Cuckoo, ExtentExhaustionFailsCleanly) {
  Table tb(256, 512);  // tiny extent arena
  bool failed = false;
  for (std::uint64_t r = 0; r < 64 && !failed; ++r) {
    failed = !tb.t->insert(hash_of_rank(r), value_of(r, 64));
  }
  EXPECT_TRUE(failed);
  EXPECT_GT(tb.t->stats().insert_failures, 0u);
}

TEST(Cuckoo, TooSmallBucketSpanThrows) {
  std::vector<std::byte> small(64);
  std::vector<std::byte> ext(1024);
  PilafCuckooTable::Config cfg;
  cfg.n_buckets = 1024;
  EXPECT_THROW(PilafCuckooTable(small, ext, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace herd::kv
