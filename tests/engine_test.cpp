// Unit tests: discrete-event engine, resources, sequential cores.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/core.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace herd::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), 1000u * 1000);
  EXPECT_EQ(ms(1), 1000ull * 1000 * 1000);
  EXPECT_EQ(sec(1), 1000ull * 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(to_ns(ns(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_us(us(7)), 7.0);
  EXPECT_NEAR(to_sec(sec(0.5)), 0.5, 1e-12);
}

TEST(Time, PerOpAtMops) {
  // 35 Mops => 28.57 ns/op.
  EXPECT_EQ(per_op_at_mops(35), static_cast<Tick>(1e6 / 35));
  EXPECT_EQ(per_op_at_mops(1), static_cast<Tick>(1e6));
}

TEST(Time, BytesAtGbps) {
  // 65 bytes at 6.5 GB/s = 10 ns.
  EXPECT_EQ(bytes_at_gbps(65, 6.5), ns(10));
  EXPECT_EQ(bytes_at_gbps(0, 5.0), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(ns(30), [&] { order.push_back(3); });
  eng.schedule_at(ns(10), [&] { order.push_back(1); });
  eng.schedule_at(ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), ns(30));
}

TEST(Engine, FifoTieBreakAtEqualTimestamps) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(ns(5), [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine eng;
  Tick seen = 0;
  eng.schedule_at(ns(100), [&] {
    eng.schedule_after(ns(50), [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, ns(150));
}

TEST(Engine, SchedulingInPastThrows) {
  Engine eng;
  eng.schedule_at(ns(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(ns(5), [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(ns(10), [&] { ++fired; });
  eng.schedule_at(ns(20), [&] { ++fired; });
  eng.schedule_at(ns(30), [&] { ++fired; });
  EXPECT_EQ(eng.run_until(ns(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), ns(20));
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine eng;
  eng.run_until(us(5));
  EXPECT_EQ(eng.now(), us(5));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_after(ns(1), chain);
  };
  eng.schedule_at(0, chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.events_processed(), 100u);
}

TEST(Engine, StepProcessesOneEvent) {
  Engine eng;
  int n = 0;
  eng.schedule_at(ns(1), [&] { ++n; });
  eng.schedule_at(ns(2), [&] { ++n; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(Resource, FifoServiceAccumulates) {
  Engine eng;
  Resource r(eng, "u");
  EXPECT_EQ(r.acquire(ns(10)), ns(10));
  EXPECT_EQ(r.acquire(ns(10)), ns(20));  // queued behind the first
  EXPECT_EQ(r.ops(), 2u);
  EXPECT_EQ(r.busy_time(), ns(20));
}

TEST(Resource, IdleGapThenAcquireStartsAtArrival) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(10));
  eng.schedule_at(ns(100), [&] {
    EXPECT_EQ(r.acquire(ns(5)), ns(105));  // starts at now, not at 10
  });
  eng.run();
}

TEST(Resource, AcquireAtFutureStart) {
  Engine eng;
  Resource r(eng, "u");
  EXPECT_EQ(r.acquire_at(ns(50), ns(10)), ns(60));
  // A later call chains FIFO after the reservation.
  EXPECT_EQ(r.acquire_at(ns(55), ns(10)), ns(70));
}

TEST(Resource, UtilizationTracksBusyFraction) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(25));
  eng.run_until(ns(100));
  EXPECT_NEAR(r.utilization(), 0.25, 1e-9);
  r.reset_stats();
  EXPECT_EQ(r.busy_time(), 0u);
  EXPECT_EQ(r.ops(), 0u);
}

TEST(SequentialCore, SerializesWork) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  std::vector<Tick> done;
  core.run(ns(100), [&] { done.push_back(eng.now()); });
  core.run(ns(50), [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], ns(100));
  EXPECT_EQ(done[1], ns(150));  // waited for the first task
}

TEST(SequentialCore, RunAtHonorsEarliest) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  Tick done = 0;
  core.run_at(ns(500), ns(10), [&] { done = eng.now(); });
  eng.run();
  EXPECT_EQ(done, ns(510));
}

TEST(SequentialCore, ChargeWithoutContinuation) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  EXPECT_EQ(core.charge(ns(30)), ns(30));
  EXPECT_EQ(core.busy_until(), ns(30));
  EXPECT_EQ(core.busy_time(), ns(30));
}

}  // namespace
}  // namespace herd::sim
