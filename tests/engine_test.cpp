// Unit tests: discrete-event engine, resources, sequential cores.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/core.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace herd::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), 1000u * 1000);
  EXPECT_EQ(ms(1), 1000ull * 1000 * 1000);
  EXPECT_EQ(sec(1), 1000ull * 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(to_ns(ns(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_us(us(7)), 7.0);
  EXPECT_NEAR(to_sec(sec(0.5)), 0.5, 1e-12);
}

TEST(Time, PerOpAtMops) {
  // 35 Mops => 28.57 ns/op.
  EXPECT_EQ(per_op_at_mops(35), static_cast<Tick>(1e6 / 35));
  EXPECT_EQ(per_op_at_mops(1), static_cast<Tick>(1e6));
}

TEST(Time, BytesAtGbps) {
  // 65 bytes at 6.5 GB/s = 10 ns.
  EXPECT_EQ(bytes_at_gbps(65, 6.5), ns(10));
  EXPECT_EQ(bytes_at_gbps(0, 5.0), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(ns(30), [&] { order.push_back(3); });
  eng.schedule_at(ns(10), [&] { order.push_back(1); });
  eng.schedule_at(ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), ns(30));
}

TEST(Engine, FifoTieBreakAtEqualTimestamps) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(ns(5), [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine eng;
  Tick seen = 0;
  eng.schedule_at(ns(100), [&] {
    eng.schedule_after(ns(50), [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, ns(150));
}

TEST(Engine, SchedulingInPastThrows) {
  Engine eng;
  eng.schedule_at(ns(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(ns(5), [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(ns(10), [&] { ++fired; });
  eng.schedule_at(ns(20), [&] { ++fired; });
  eng.schedule_at(ns(30), [&] { ++fired; });
  EXPECT_EQ(eng.run_until(ns(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), ns(20));
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine eng;
  eng.run_until(us(5));
  EXPECT_EQ(eng.now(), us(5));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_after(ns(1), chain);
  };
  eng.schedule_at(0, chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.events_processed(), 100u);
}

TEST(Engine, StepProcessesOneEvent) {
  Engine eng;
  int n = 0;
  eng.schedule_at(ns(1), [&] { ++n; });
  eng.schedule_at(ns(2), [&] { ++n; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(Resource, FifoServiceAccumulates) {
  Engine eng;
  Resource r(eng, "u");
  EXPECT_EQ(r.acquire(ns(10)), ns(10));
  EXPECT_EQ(r.acquire(ns(10)), ns(20));  // queued behind the first
  EXPECT_EQ(r.ops(), 2u);
  EXPECT_EQ(r.busy_time(), ns(20));
}

TEST(Resource, IdleGapThenAcquireStartsAtArrival) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(10));
  eng.schedule_at(ns(100), [&] {
    EXPECT_EQ(r.acquire(ns(5)), ns(105));  // starts at now, not at 10
  });
  eng.run();
}

TEST(Resource, AcquireAtFutureStart) {
  Engine eng;
  Resource r(eng, "u");
  EXPECT_EQ(r.acquire_at(ns(50), ns(10)), ns(60));
  // A later call chains FIFO after the reservation.
  EXPECT_EQ(r.acquire_at(ns(55), ns(10)), ns(70));
}

TEST(Resource, UtilizationTracksBusyFraction) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(25));
  eng.run_until(ns(100));
  EXPECT_NEAR(r.utilization(), 0.25, 1e-9);
  r.reset_stats();
  EXPECT_EQ(r.busy_time(), 0u);
  EXPECT_EQ(r.ops(), 0u);
}

// Regression: pipeline stages enqueue service time that lies in the future
// (analytic completion times), so naive busy/elapsed accounting exceeded
// 1.0. Busy time must clamp to the sampling instant.
TEST(Resource, UtilizationNeverExceedsOneWithQueuedFutureWork) {
  Engine eng;
  Resource r(eng, "u");
  for (int i = 0; i < 10; ++i) r.acquire(ns(100));  // 1000 ns of backlog
  eng.run_until(ns(100));
  EXPECT_NEAR(r.utilization(), 1.0, 1e-9);  // not 10.0
  EXPECT_EQ(r.busy_time(), ns(1000));       // unclamped meter still full
  eng.run_until(ns(2000));
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);  // 1000 busy / 2000 elapsed
}

// Regression: reset_stats() mid-busy-segment must split the segment — the
// part before the reset belongs to the old window, the rest accrues to the
// new one. Both windows must still read <= 1.0.
TEST(Resource, ResetStatsSplitsSpanningBusySegment) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(100));
  eng.run_until(ns(50));
  EXPECT_NEAR(r.utilization(), 1.0, 1e-9);
  r.reset_stats();  // 50 ns of the segment remain ahead
  eng.run_until(ns(100));
  EXPECT_NEAR(r.utilization(), 1.0, 1e-9);  // remaining 50/50, not 100/50
  eng.run_until(ns(150));
  EXPECT_NEAR(r.utilization(), 0.5, 1e-9);
}

TEST(Resource, CumulativeBusyClampsPartialSegment) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire_at(ns(10), ns(20));  // busy [10, 30)
  EXPECT_EQ(r.cumulative_busy(ns(5)), 0u);
  EXPECT_EQ(r.cumulative_busy(ns(15)), ns(5));
  EXPECT_EQ(r.cumulative_busy(ns(30)), ns(20));
  EXPECT_EQ(r.cumulative_busy(ns(100)), ns(20));
}

TEST(Resource, AdmissionReportsQueueingVsServiceSplit) {
  Engine eng;
  Resource r(eng, "u");
  Resource::Admission a = r.admit(ns(10));
  EXPECT_EQ(a.queued(), 0u);
  EXPECT_EQ(a.service(), ns(10));
  Resource::Admission b = r.admit(ns(10));  // behind the first
  EXPECT_EQ(b.queued(), ns(10));
  EXPECT_EQ(b.service(), ns(10));
  EXPECT_EQ(b.done, ns(20));
}

TEST(Resource, BacklogIsTimeToDrain) {
  Engine eng;
  Resource r(eng, "u");
  EXPECT_EQ(r.backlog(), 0u);
  r.acquire(ns(40));
  EXPECT_EQ(r.backlog(), ns(40));
  eng.run_until(ns(30));
  EXPECT_EQ(r.backlog(), ns(10));
  eng.run_until(ns(100));
  EXPECT_EQ(r.backlog(), 0u);
}

TEST(Resource, StageStatsRecordOnlyWhenEnabled) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(10));
  EXPECT_EQ(r.stage_stats(), nullptr);  // off by default: cores pay nothing
  r.enable_stage_stats();
  r.acquire(ns(10));  // queued 10 behind the first
  ASSERT_NE(r.stage_stats(), nullptr);
  EXPECT_EQ(r.stage_stats()->queue.count(), 1u);
  EXPECT_EQ(r.stage_stats()->service.count(), 1u);
  r.reset_stats();
  EXPECT_EQ(r.stage_stats()->queue.count(), 0u);
}

TEST(Resource, TotalOpsSurvivesResetStats) {
  Engine eng;
  Resource r(eng, "u");
  r.acquire(ns(1));
  r.acquire(ns(1));
  r.reset_stats();
  EXPECT_EQ(r.ops(), 0u);
  EXPECT_EQ(r.total_ops(), 2u);
}

TEST(SequentialCore, SerializesWork) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  std::vector<Tick> done;
  core.run(ns(100), [&] { done.push_back(eng.now()); });
  core.run(ns(50), [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], ns(100));
  EXPECT_EQ(done[1], ns(150));  // waited for the first task
}

TEST(SequentialCore, RunAtHonorsEarliest) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  Tick done = 0;
  core.run_at(ns(500), ns(10), [&] { done = eng.now(); });
  eng.run();
  EXPECT_EQ(done, ns(510));
}

TEST(SequentialCore, ChargeWithoutContinuation) {
  Engine eng;
  cluster::SequentialCore core(eng, "c");
  EXPECT_EQ(core.charge(ns(30)), ns(30));
  EXPECT_EQ(core.busy_until(), ns(30));
  EXPECT_EQ(core.busy_time(), ns(30));
}

}  // namespace
}  // namespace herd::sim
