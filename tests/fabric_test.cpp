// Unit tests: switched fabric model.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "sim/engine.hpp"

namespace herd::fabric {
namespace {

TEST(Fabric, WireBytesAddTransportHeaders) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  const auto& cfg = f.config();
  EXPECT_EQ(f.wire_bytes(32, false), 32 + cfg.header_connected);
  EXPECT_EQ(f.wire_bytes(32, true), 32 + cfg.header_datagram);
  // UD carries the larger (GRH) header.
  EXPECT_GT(cfg.header_datagram, cfg.header_connected);
}

TEST(Fabric, ZeroPayloadStillPaysOneHeader) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  EXPECT_EQ(f.wire_bytes(0, false), f.config().header_connected);
}

TEST(Fabric, MtuSegmentationPaysPerPacketHeaders) {
  sim::Engine eng;
  FabricConfig cfg = FabricConfig::infiniband_56g();
  Fabric f(eng, cfg);
  std::uint32_t two_packets = cfg.mtu + 1;
  EXPECT_EQ(f.wire_bytes(two_packets, false),
            two_packets + 2 * cfg.header_connected);
}

TEST(Fabric, DeliversAfterStoreAndForwardLatency) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  auto b = f.attach("b");
  sim::Tick arrival = 0;
  f.transmit(a, b, 100, [&] { arrival = eng.now(); });
  eng.run();
  // serialize twice (store-and-forward) + hop latency.
  sim::Tick ser = sim::bytes_at_gbps(100, f.config().link_gbps);
  EXPECT_EQ(arrival, 2 * ser + f.config().hop_latency);
}

TEST(Fabric, TransmitAtDefersSerializationStart) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  auto b = f.attach("b");
  sim::Tick arrival = 0;
  f.transmit_at(sim::us(1), a, b, 100, [&] { arrival = eng.now(); });
  eng.run();
  sim::Tick ser = sim::bytes_at_gbps(100, f.config().link_gbps);
  EXPECT_EQ(arrival, sim::us(1) + 2 * ser + f.config().hop_latency);
}

TEST(Fabric, InOrderDeliveryPerPath) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  auto b = f.attach("b");
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    f.transmit(a, b, 64, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(Fabric, IncastContendsOnReceiverLink) {
  // Two senders to one receiver: the receiver's RX link caps aggregate
  // bandwidth, so total time ~ 2x the single-sender case.
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  auto b = f.attach("b");
  auto c = f.attach("c");
  sim::Tick last = 0;
  constexpr int kMsgs = 100;
  for (int i = 0; i < kMsgs; ++i) {
    f.transmit(a, c, 4096, [&] { last = eng.now(); });
    f.transmit(b, c, 4096, [&] { last = eng.now(); });
  }
  eng.run();
  sim::Tick ser = sim::bytes_at_gbps(4096, f.config().link_gbps);
  EXPECT_GE(last, 2 * kMsgs * ser);  // rx link serialized everything
}

TEST(Fabric, SendersShareNothingOnDisjointPaths) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  auto b = f.attach("b");
  auto c = f.attach("c");
  auto d = f.attach("d");
  sim::Tick t_ab = 0, t_cd = 0;
  f.transmit(a, b, 1000, [&] { t_ab = eng.now(); });
  f.transmit(c, d, 1000, [&] { t_cd = eng.now(); });
  eng.run();
  EXPECT_EQ(t_ab, t_cd);  // fully parallel
}

TEST(Fabric, BadPortThrows) {
  sim::Engine eng;
  Fabric f(eng, FabricConfig::infiniband_56g());
  auto a = f.attach("a");
  EXPECT_THROW(f.transmit(a, 99, 64, [] {}), std::out_of_range);
}

TEST(Fabric, RoceHasLargerHeadersAndLessBandwidth) {
  FabricConfig ib = FabricConfig::infiniband_56g();
  FabricConfig roce = FabricConfig::roce_40g();
  EXPECT_LT(roce.link_gbps, ib.link_gbps);
  EXPECT_GT(roce.header_connected, ib.header_connected);
  EXPECT_GT(roce.header_datagram, roce.header_connected);
}

}  // namespace
}  // namespace herd::fabric
