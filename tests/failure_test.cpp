// Failure injection: wire losses and the §2.2.3 reliability tradeoff.
//
// "There is no acknowledgement of packet reception in UC; packets can be
//  lost... our design, similar to choices made by Facebook and others,
//  sacrifices transport-level retransmission for fast common case
//  performance at the cost of rare application-level retries."
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "herd/testbed.hpp"

namespace herd {
namespace {

cluster::ClusterConfig lossy_apt(double p) {
  auto cfg = cluster::ClusterConfig::apt();
  cfg.fabric.loss_probability = p;
  return cfg;
}

TEST(FailureInjection, RcRecoversLossesInHardware) {
  // Every RC WRITE completes successfully despite 5% wire loss — the RNIC
  // retransmits (§2.2.1: "reliable delivery ... hardware-based
  // retransmission of lost packets").
  cluster::Cluster cl(lossy_apt(0.05), 2, 64 << 10);
  auto scq = cl.host(0).ctx().create_cq();
  auto rcq = cl.host(0).ctx().create_cq();
  auto dcq = cl.host(1).ctx().create_cq();
  auto a = cl.host(0).ctx().create_qp(
      {verbs::Transport::kRc, scq.get(), rcq.get()});
  auto b = cl.host(1).ctx().create_qp(
      {verbs::Transport::kRc, dcq.get(), dcq.get()});
  a->connect(*b);
  auto amr = cl.host(0).ctx().register_mr(0, 4096, {});
  auto bmr = cl.host(1).ctx().register_mr(0, 4096, {.remote_write = true});

  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sge = {0, 32, amr.lkey};
    wr.remote_addr = 0;
    wr.rkey = bmr.rkey;
    wr.inline_data = true;
    a->post_send(wr);
  }
  cl.engine().run();
  int completions = 0;
  verbs::Wc wc;
  while (scq->poll({&wc, 1}) == 1) {
    EXPECT_EQ(wc.status, verbs::WcStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, kOps);
  EXPECT_GT(cl.host(0).rnic().counters().retransmissions, 0u);
  EXPECT_GT(cl.fabric().messages_lost(), 0u);
}

TEST(FailureInjection, UcLosesSilently) {
  cluster::Cluster cl(lossy_apt(0.20), 2, 64 << 10);
  auto scq = cl.host(0).ctx().create_cq();
  auto rcq = cl.host(0).ctx().create_cq();
  auto dcq = cl.host(1).ctx().create_cq();
  auto a = cl.host(0).ctx().create_qp(
      {verbs::Transport::kUc, scq.get(), rcq.get()});
  auto b = cl.host(1).ctx().create_qp(
      {verbs::Transport::kUc, dcq.get(), dcq.get()});
  a->connect(*b);
  auto amr = cl.host(0).ctx().register_mr(0, 4096, {});
  auto bmr = cl.host(1).ctx().register_mr(0, 4096, {.remote_write = true});

  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sge = {0, 32, amr.lkey};
    wr.remote_addr = 0;
    wr.rkey = bmr.rkey;
    wr.inline_data = true;
    wr.signaled = false;
    a->post_send(wr);
  }
  cl.engine().run();
  std::uint64_t arrived = cl.host(1).rnic().counters().rx_ops;
  EXPECT_LT(arrived, static_cast<std::uint64_t>(kOps));   // some vanished
  EXPECT_NEAR(static_cast<double>(arrived), kOps * 0.8, kOps * 0.05);
  EXPECT_EQ(cl.host(0).rnic().counters().retransmissions, 0u);
}

TEST(FailureInjection, HerdRetriesRecoverLostRequests) {
  // Full HERD under 0.5% loss with application-level retries: every
  // operation eventually completes with correct data.
  core::TestbedConfig cfg;
  cfg.cluster = lossy_apt(0.005);
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.window = 2;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.herd.request_tokens = true;  // retries need response correlation
  cfg.workload.n_keys = 1000;
  cfg.verify_values = true;
  core::HerdTestbed bed(cfg);
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    bed.client(c).set_retry_timeout(sim::us(50));
  }
  auto r = bed.run(sim::ms(1), sim::ms(4));
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.value_mismatches, 0u);
  std::uint64_t retries = 0;
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    retries += bed.client(c).stats().retries;
  }
  EXPECT_GT(retries, 0u);  // losses happened and were retried
  // Clients never wedge: no client's window stays permanently blocked.
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    EXPECT_GT(bed.client(c).stats().completed, 50u) << "client " << c;
  }
}

TEST(FailureInjection, LosslessByDefault) {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 1000;
  core::HerdTestbed bed(cfg);
  bed.run(sim::ms(1), sim::ms(1));
  EXPECT_EQ(bed.cluster().fabric().messages_lost(), 0u);
}

TEST(HerdDelete, DeleteRemovesKeysEndToEnd) {
  // The §2.1 interface is GET/PUT/DELETE; run a mix including DELETEs and
  // verify misses appear (deleted keys) while values stay correct.
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 500;
  cfg.workload.get_fraction = 0.70;
  cfg.workload.delete_fraction = 0.15;  // 15% DELETE, 15% PUT
  cfg.verify_values = true;
  core::HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(3));
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_GT(r.get_misses, 0u);  // deletions create misses
  std::uint64_t deletes = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    deletes += bed.service().proc_stats(s).deletes;
  }
  EXPECT_GT(deletes, 100u);
  std::uint64_t client_deletes = 0;
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    client_deletes += bed.client(c).stats().deletes;
  }
  EXPECT_NEAR(static_cast<double>(client_deletes),
              static_cast<double>(deletes),
              static_cast<double>(deletes) * 0.1);
}

}  // namespace
}  // namespace herd
