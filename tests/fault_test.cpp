// Fault injection (`herd::fault`) and client resilience.
//
// The paper's §2.2.3 assumes losses are "extremely rare"; this suite scripts
// the failure modes that assumption glosses over — loss bursts, link
// degradation, NIC stalls, and process crashes — and checks that the
// resilience layer (backoff, deadlines, QP error states, failover) keeps
// every request reaching a terminal state with exactly-once mutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "herd/testbed.hpp"
#include "obs/metrics.hpp"

namespace herd {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::LinkDegradeFault;
using fault::NicStallFault;
using fault::ProcCrashFault;
using fault::Window;
using fault::WireLossFault;

TEST(FaultPlanWindows, UniformLossDropsOnlyInsideWindow) {
  sim::Engine engine;
  FaultPlan plan;
  plan.wire_loss.push_back(
      WireLossFault::uniform({sim::us(100), sim::us(200)}, 1.0));
  FaultInjector inj(engine, plan);
  EXPECT_FALSE(inj.drop(sim::us(50)));
  EXPECT_TRUE(inj.drop(sim::us(150)));
  EXPECT_TRUE(inj.drop(sim::us(199)));
  EXPECT_FALSE(inj.drop(sim::us(200)));  // half-open window
  EXPECT_FALSE(inj.drop(sim::us(300)));
  EXPECT_EQ(inj.counters().wire_losses, 2u);
}

TEST(FaultPlanWindows, GilbertElliottMatchesAverageLossAndBurstLength) {
  sim::Engine engine;
  constexpr double kAvgLoss = 0.10;
  constexpr sim::Tick kMeanBurst = sim::us(8);
  FaultPlan plan;
  plan.wire_loss.push_back(
      WireLossFault::burst({0, sim::ms(1000)}, kAvgLoss, kMeanBurst));
  FaultInjector inj(engine, plan);

  constexpr int kMessages = 200000;
  int lost = 0;
  for (int i = 0; i < kMessages; ++i) {
    if (inj.drop(sim::us(i))) ++lost;
  }
  double frac = static_cast<double>(lost) / kMessages;
  EXPECT_NEAR(frac, kAvgLoss, 0.02);
  ASSERT_GT(inj.counters().burst_entries, 0u);
  // Losses arrive in runs: with one message per microsecond offered, a
  // burst of mean duration 8us swallows ~8 consecutive messages.
  double mean_run = static_cast<double>(inj.counters().wire_losses) /
                    static_cast<double>(inj.counters().burst_entries);
  EXPECT_NEAR(mean_run, 8.0, 2.5);
}

TEST(FaultPlanWindows, BurstValidatesArguments) {
  EXPECT_THROW(WireLossFault::burst({0, 100}, 1.0, sim::us(4)),
               std::invalid_argument);
  EXPECT_THROW(WireLossFault::burst({0, 100}, -0.1, sim::us(4)),
               std::invalid_argument);
  EXPECT_THROW(WireLossFault::burst({0, 100}, 0.01, 0),
               std::invalid_argument);
}

TEST(LinkDegrade, SlowsMessagesInsideWindowOnly) {
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 64 << 10);
  FaultPlan plan;
  LinkDegradeFault f;
  f.window = {sim::us(100), sim::us(200)};
  f.bandwidth_factor = 0.25;  // FDR -> SDR fallback
  f.extra_latency = sim::ns(500);
  plan.link_degrade.push_back(f);
  FaultInjector inj(cl.engine(), plan);
  cl.fabric().set_fault_model(&inj);

  sim::Tick a1 = 0, a2 = 0, a3 = 0;
  cl.fabric().transmit_at(sim::us(10), 0, 1, 4096,
                          [&]() { a1 = cl.engine().now(); });
  cl.fabric().transmit_at(sim::us(110), 0, 1, 4096,
                          [&]() { a2 = cl.engine().now(); });
  cl.fabric().transmit_at(sim::us(210), 0, 1, 4096,
                          [&]() { a3 = cl.engine().now(); });
  cl.engine().run();

  sim::Tick healthy = a1 - sim::us(10);
  sim::Tick degraded = a2 - sim::us(110);
  sim::Tick recovered = a3 - sim::us(210);
  // 4x slower serialization plus the extra hop latency.
  EXPECT_GT(degraded, healthy + sim::ns(500));
  EXPECT_GT(degraded, healthy * 2);
  EXPECT_EQ(recovered, healthy);  // window closed, full rate again
  EXPECT_EQ(cl.fabric().messages_degraded(), 1u);
}

TEST(NicStall, TrafficQueuesBehindStallAndDrainsAfter) {
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 64 << 10);
  FaultPlan plan;
  plan.nic_stall.push_back(NicStallFault{0, {sim::us(50), sim::us(150)}});
  FaultInjector inj(cl.engine(), plan);
  inj.arm_nic_stall(0, cl.host(0).rnic().tx());
  inj.arm_nic_stall(0, cl.host(0).rnic().rx());
  inj.arm_nic_stall(0, cl.host(0).rnic().dispatch());

  auto scq = cl.host(0).ctx().create_cq();
  auto dcq = cl.host(1).ctx().create_cq();
  auto a = cl.host(0).ctx().create_qp(
      {verbs::Transport::kUc, scq.get(), scq.get()});
  auto b = cl.host(1).ctx().create_qp(
      {verbs::Transport::kUc, dcq.get(), dcq.get()});
  a->connect(*b);
  auto amr = cl.host(0).ctx().register_mr(0, 4096, {});
  auto bmr = cl.host(1).ctx().register_mr(0, 4096, {.remote_write = true});

  sim::Tick landed = 0;
  cl.host(1).memory().add_watch(
      0, 64, [&](std::uint64_t, std::uint32_t) {
        landed = cl.engine().now();
      });
  // Posted mid-stall: the WRITE must wait for the NIC to unfreeze.
  cl.engine().schedule_at(sim::us(60), [&]() {
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sge = {0, 64, amr.lkey};
    wr.remote_addr = 0;
    wr.rkey = bmr.rkey;
    wr.inline_data = true;
    wr.signaled = false;
    a->post_send(wr);
  });
  cl.engine().run();
  EXPECT_GE(landed, sim::us(150));
  EXPECT_LT(landed, sim::us(250));  // drains promptly once unfrozen
}

TEST(RcRetryExhaustion, QpErrorsFlushesAndRecovers) {
  // A loss window outlasting retry_cnt hardware retransmissions: the RC QP
  // completes the WR with kRetryExceeded and enters the error state; later
  // posts flush (kWrFlushErr) until reset() re-arms it.
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 64 << 10);
  FaultPlan plan;
  plan.wire_loss.push_back(
      WireLossFault::uniform({0, sim::us(400)}, 1.0));
  FaultInjector inj(cl.engine(), plan);
  cl.fabric().set_fault_model(&inj);

  auto scq = cl.host(0).ctx().create_cq();
  auto dcq = cl.host(1).ctx().create_cq();
  auto a = cl.host(0).ctx().create_qp(
      {verbs::Transport::kRc, scq.get(), scq.get()});
  auto b = cl.host(1).ctx().create_qp(
      {verbs::Transport::kRc, dcq.get(), dcq.get()});
  a->connect(*b);
  auto amr = cl.host(0).ctx().register_mr(0, 4096, {});
  auto bmr = cl.host(1).ctx().register_mr(0, 4096, {.remote_write = true});

  auto write = [&](bool signaled) {
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kWrite;
    wr.sge = {0, 32, amr.lkey};
    wr.remote_addr = 0;
    wr.rkey = bmr.rkey;
    wr.inline_data = true;
    wr.signaled = signaled;
    a->post_send(wr);
  };

  write(true);  // dies in the loss window after retry_cnt attempts
  cl.engine().schedule_at(sim::us(600), [&]() {
    EXPECT_EQ(a->state(), verbs::QpState::kError);
    write(true);  // flushed, not transmitted
  });
  cl.engine().schedule_at(sim::ms(1), [&]() {
    a->reset();
    EXPECT_EQ(a->state(), verbs::QpState::kReady);
    write(true);  // window over: succeeds
  });
  cl.engine().run();

  std::vector<verbs::WcStatus> statuses;
  verbs::Wc wc;
  while (scq->poll({&wc, 1}) == 1) statuses.push_back(wc.status);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], verbs::WcStatus::kRetryExceeded);
  EXPECT_EQ(statuses[1], verbs::WcStatus::kWrFlushErr);
  EXPECT_EQ(statuses[2], verbs::WcStatus::kSuccess);
  EXPECT_EQ(cl.host(0).rnic().counters().retry_exhausted, 1u);
  EXPECT_GT(cl.host(0).rnic().counters().retransmissions, 0u);
}

TEST(HerdFaults, DeleteWorkloadSurvivesBurstLoss) {
  // DELETE traffic under token mode and scripted bursty loss: values stay
  // correct, deletions land, and retries recover every lost exchange.
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.window = 2;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.herd.request_tokens = true;
  cfg.workload.n_keys = 500;
  cfg.workload.get_fraction = 0.70;
  cfg.workload.delete_fraction = 0.15;  // 15% DELETE, 15% PUT
  cfg.verify_values = true;
  cfg.fault_plan.wire_loss.push_back(
      WireLossFault::burst({0, sim::ms(20)}, 0.005, sim::us(3)));
  cfg.resilience.retry_timeout = sim::us(50);
  core::HerdTestbed bed(cfg);

  auto r = bed.run(sim::ms(1), sim::ms(4));
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_GT(r.messages_lost, 0u);
  EXPECT_GT(r.retries, 0u);
  std::uint64_t deletes = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    deletes += bed.service().proc_stats(s).deletes;
  }
  EXPECT_GT(deletes, 100u);
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    EXPECT_GT(bed.client(c).stats().completed, 50u) << "client " << c;
  }
  // End-of-run counter report covers the fault and resilience layers.
  obs::Snapshot rep = bed.snapshot();
  EXPECT_GT(rep.value("fault.wire_losses"), 0u);
  EXPECT_GT(rep.value("client.retries"), 0u);
  EXPECT_TRUE(rep.has("service.duplicate_mutations"));
}

TEST(HerdFaults, ResilienceRequiresTokens) {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 1;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 100;
  cfg.resilience.retry_timeout = sim::us(50);
  cfg.resilience.deadline = sim::ms(1);  // needs request_tokens
  // The coupling rule is enforced at config-build time (HerdConfigBuilder
  //::validate, which TestbedConfig::validate delegates to) — not deep in
  // the client where the mistake would surface long after.
  EXPECT_THROW(core::TestbedConfigBuilder(cfg).build(),
               std::invalid_argument);
}

TEST(HerdFaults, CrashFailoverGracefulDegradation) {
  // The acceptance scenario: 1% bursty loss throughout, server process 0
  // fail-stops mid-run and later recovers. Clients detect the silence, fail
  // outstanding requests over to process 1 (which serves partition 0 from
  // its replica), and goodput after failover recovers to >= 90% of the
  // pre-crash rate. Every request reaches deadline-or-response, every acked
  // PUT stays visible, and no PUT is applied twice.
  // Load is sized well below one process's capacity: graceful degradation
  // is only meaningful when the survivor can absorb the failed-over traffic
  // (a saturated 2-proc cluster necessarily halves when one dies).
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 2;
  cfg.herd.window = 1;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.herd.request_tokens = true;
  cfg.workload.n_keys = 500;
  cfg.workload.get_fraction = 0.50;  // heavy PUTs stress exactly-once
  cfg.verify_values = true;
  cfg.fault_plan.wire_loss.push_back(
      WireLossFault::burst({0, sim::ms(60)}, 0.01, sim::us(3)));
  cfg.fault_plan.proc_crash.push_back(
      ProcCrashFault{0, sim::ms(4), sim::ms(9)});
  cfg.resilience.retry_timeout = sim::us(30);
  cfg.resilience.backoff_multiplier = 2.0;
  cfg.resilience.backoff_max = sim::us(120);  // bound worst-case window stall
  cfg.resilience.jitter = 0.2;
  cfg.resilience.deadline = sim::ms(1);
  cfg.resilience.failover_threshold = 3;
  cfg.resilience.probe_interval = sim::ms(1);
  core::HerdTestbed bed(cfg);

  // Pre-crash baseline: warmup [0,1) ms, measure [1,3) ms.
  auto before = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(before.ops, 300u);
  EXPECT_EQ(before.value_mismatches, 0u);

  // Crash at 4 ms lands in this warmup [3,5) ms; measure [5,7) ms runs
  // entirely with process 0 dead and all traffic failed over.
  auto during = bed.run(sim::ms(2), sim::ms(2));
  EXPECT_EQ(during.value_mismatches, 0u);
  EXPECT_GT(during.failovers + before.failovers, 0u);
  // A crash now also loses the proc's open response chain (up to a
  // coalescing window of WRs die unposted with it), so the degradation
  // floor sits a touch below the pre-batching 0.9.
  EXPECT_GE(static_cast<double>(during.ops),
            0.85 * static_cast<double>(before.ops));

  // Recovery at 9 ms: process 0 rescans its region chunk; requests it finds
  // were often also failed over to process 1, so the duplicate-suppression
  // path must fire for exactly-once mutations.
  auto after = bed.run(sim::ms(1), sim::ms(3));
  EXPECT_EQ(after.value_mismatches, 0u);
  EXPECT_EQ(after.get_misses, 0u);  // every acked PUT stayed visible

  // fault.* counters live in the injector and survive per-run stat resets.
  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("fault.crashes"), 1u);
  EXPECT_EQ(rep.value("fault.recoveries"), 1u);
  EXPECT_GT(rep.value("service.foreign_serves"), 0u);
  EXPECT_GT(rep.value("service.duplicate_mutations"), 0u);

  // Drain: stop issuing and let every in-flight request reach a terminal
  // state (response, retry-then-response, or deadline). No hung requests.
  for (std::size_t c = 0; c < bed.num_clients(); ++c) bed.client(c).stop();
  bed.cluster().engine().run();
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    EXPECT_EQ(bed.client(c).outstanding(), 0u) << "client " << c;
  }
}

TEST(Backoff, ScheduleIsMonotoneCappedAndOverflowFree) {
  // Property grid over the jitter-free schedule: for every resilience
  // config, base_backoff must start at retry_timeout, never decrease with
  // the attempt number, never exceed backoff_max (including attempt 0 when
  // retry_timeout itself is above the cap), and saturate instead of
  // overflowing the double -> Tick cast at high attempt counts.
  const sim::Tick timeouts[] = {sim::us(10), sim::us(50), sim::ms(3)};
  const double multipliers[] = {0.5, 1.0, 1.7, 2.0, 8.0};
  const sim::Tick caps[] = {sim::us(40), sim::us(120), sim::ms(2)};
  for (sim::Tick timeout : timeouts) {
    for (double mult : multipliers) {
      for (sim::Tick cap : caps) {
        core::ClientResilience res;
        res.retry_timeout = timeout;
        res.backoff_multiplier = mult;
        res.backoff_max = cap;
        sim::Tick prev = 0;
        for (std::uint32_t attempt = 0; attempt <= 64; ++attempt) {
          sim::Tick b = core::HerdClient::base_backoff(res, attempt);
          EXPECT_GE(b, prev) << "t=" << timeout << " m=" << mult
                             << " cap=" << cap << " attempt=" << attempt;
          EXPECT_LE(b, std::max<sim::Tick>(cap, 1)) << "attempt=" << attempt;
          EXPECT_GE(b, 1u);  // a zero delay would busy-loop the timer
          prev = b;
        }
        EXPECT_EQ(core::HerdClient::base_backoff(res, 0),
                  std::max<sim::Tick>(std::min(timeout, cap), 1));
        // Multipliers below 1 clamp to a flat schedule, never a shrinking
        // one (retrying *faster* under persistent loss is a retry storm).
        if (mult <= 1.0) {
          EXPECT_EQ(core::HerdClient::base_backoff(res, 64),
                    core::HerdClient::base_backoff(res, 0));
        }
      }
    }
  }
  // backoff_max = 0 means uncapped: growth must still saturate, not wrap.
  core::ClientResilience uncapped;
  uncapped.retry_timeout = sim::ms(1);
  uncapped.backoff_multiplier = 8.0;
  uncapped.backoff_max = 0;
  sim::Tick prev = 0;
  for (std::uint32_t attempt = 0; attempt <= 64; ++attempt) {
    sim::Tick b = core::HerdClient::base_backoff(uncapped, attempt);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, static_cast<sim::Tick>(9.1e18));  // saturated, not wrapped
    prev = b;
  }
}

TEST(Backoff, JitterStaysWithinConfiguredBounds) {
  // backoff_delay draws uniform +/- jitter around the base schedule. Build
  // a minimal testbed for a live client and sample each attempt repeatedly.
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 1;
  cfg.herd.n_clients = 1;
  cfg.herd.request_tokens = true;
  cfg.workload.n_keys = 16;
  cfg.resilience.retry_timeout = sim::us(25);
  cfg.resilience.backoff_multiplier = 2.0;
  cfg.resilience.backoff_max = sim::us(400);
  cfg.resilience.jitter = 0.2;
  core::HerdTestbed bed(cfg);
  core::HerdClient& cl = bed.client(0);

  bool saw_below = false, saw_above = false;
  for (std::uint32_t attempt = 0; attempt <= 64; ++attempt) {
    double base =
        static_cast<double>(core::HerdClient::base_backoff(cfg.resilience,
                                                           attempt));
    for (int draw = 0; draw < 64; ++draw) {
      sim::Tick d = cl.backoff_delay(attempt);
      EXPECT_GE(static_cast<double>(d), base * 0.8 - 1.0)
          << "attempt " << attempt;
      EXPECT_LE(static_cast<double>(d), base * 1.2 + 1.0)
          << "attempt " << attempt;
      if (static_cast<double>(d) < base) saw_below = true;
      if (static_cast<double>(d) > base) saw_above = true;
    }
  }
  EXPECT_TRUE(saw_below);  // jitter really is two-sided
  EXPECT_TRUE(saw_above);
}

TEST(HerdFaults, FailoverRecreditsRecvOnFullyOccupiedSurvivor) {
  // One client with the full window outstanding, split across two server
  // processes. Process 0 fail-stops and never recovers; failover moves
  // every outstanding request onto process 1, whose response window is
  // then fully occupied. reissue() must post a fresh RECV credit on the
  // survivor's UD QP for each moved request — without it, the failed-over
  // responses find no RECV, are silently dropped, and every moved request
  // dies at its deadline.
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 1;
  cfg.herd.window = 8;  // deep window: survivor takes 8 in-flight at once
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.herd.request_tokens = true;
  cfg.workload.n_keys = 64;  // keys spread over both partitions
  cfg.workload.get_fraction = 0.5;
  cfg.verify_values = true;
  cfg.fault_plan.proc_crash.push_back(
      ProcCrashFault{0, sim::us(500), 0});  // fail-stop, no recovery
  cfg.resilience.retry_timeout = sim::us(30);
  cfg.resilience.backoff_multiplier = 2.0;
  cfg.resilience.backoff_max = sim::us(120);
  cfg.resilience.jitter = 0.2;
  cfg.resilience.deadline = sim::ms(2);
  cfg.resilience.failover_threshold = 3;
  cfg.resilience.probe_interval = sim::ms(1);
  core::HerdTestbed bed(cfg);

  // Crash at 500us lands inside the warmup; the measured window runs with
  // process 0 dead and all 8 window slots pointed at process 1.
  auto r = bed.run(sim::ms(1), sim::ms(4));
  EXPECT_GT(r.failovers, 0u);
  EXPECT_GT(r.ops, 1000u);  // the survivor keeps serving a full window
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_EQ(r.bad, 0u);
  // Every failed-over response found a RECV credit: had reissue() not
  // re-credited, all 8 moved requests (and every request after them) could
  // only retire at the deadline.
  EXPECT_EQ(r.deadline_exceeded, 0u);

  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("fault.crashes"), 1u);
  EXPECT_EQ(rep.value("fault.recoveries"), 0u);
  EXPECT_GT(rep.value("service.foreign_serves"), 0u);

  bed.client(0).stop();
  bed.cluster().engine().run();
  EXPECT_EQ(bed.client(0).outstanding(), 0u);
  EXPECT_TRUE(bed.client(0).proc_suspected(0));
}

}  // namespace
}  // namespace herd
