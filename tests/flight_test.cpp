// Tests for the herd::obs flight recorder, resource registry, and
// bottleneck attribution (src/obs/flight.*).
//
// The paper-facing claims pinned here: attribution names pcie.pio on a
// PIO-bound outbound config and pcie.dma_wr on a DMA-starved inbound
// config (the Fig. 4 / Fig. 3 knees), and the exported herd-timeseries/1
// document is byte-identical across same-seed runs — the property chaos
// replay and the CI artifact diffing both lean on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.hpp"
#include "microbench/microbench.hpp"
#include "microbench/throughput.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace {

using namespace herd;
using sim::ns;
using sim::us;

// Const-side member access: Json::operator[] is mutating (object builder),
// so reads on const values go through find().
const obs::Json& get(const obs::Json& j, std::string_view key) {
  const obs::Json* p = j.find(key);
  if (p == nullptr) {
    ADD_FAILURE() << "missing key: " << key;
    static const obs::Json null;
    return null;
  }
  return *p;
}

std::uint64_t u64(const obs::Json& j, std::string_view key) {
  return get(j, key).as_uint();
}

TEST(ResourceRegistry, EntriesSortedAndFindable) {
  sim::Engine eng;
  sim::Resource a(eng, "b.res");
  sim::Resource b(eng, "a.res");
  obs::ResourceRegistry reg;
  reg.add("b.res", a);
  reg.add("a.res", b);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.entries()[0].name, "a.res");
  EXPECT_EQ(reg.entries()[1].name, "b.res");
  EXPECT_TRUE(reg.has("a.res"));
  EXPECT_FALSE(reg.has("c.res"));
  EXPECT_EQ(reg.find("b.res"), &a);
}

TEST(ResourceRegistry, DuplicateNameThrows) {
  sim::Engine eng;
  sim::Resource a(eng, "x");
  sim::Resource b(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", a);
  EXPECT_THROW(reg.add("x", b), std::logic_error);
}

TEST(ResourceRegistry, AddEnablesStageStatsAndBeginWindowResets) {
  sim::Engine eng;
  sim::Resource r(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", r);
  ASSERT_NE(r.stage_stats(), nullptr);  // registration turned them on
  r.acquire(ns(10));
  eng.run_until(ns(10));
  reg.begin_window();
  EXPECT_EQ(r.ops(), 0u);
  EXPECT_EQ(r.busy_time(), 0u);
}

TEST(ResourceClass, StripsHostComponents) {
  EXPECT_EQ(obs::resource_class("pcie.host0.pio"), "pcie.pio");
  EXPECT_EQ(obs::resource_class("rnic.host12.dispatch"), "rnic.dispatch");
  EXPECT_EQ(obs::resource_class("fabric.host3.tx"), "fabric.tx");
  EXPECT_EQ(obs::resource_class("pcie.pio"), "pcie.pio");  // already a class
  EXPECT_EQ(obs::resource_class("hostname.thing"), "hostname.thing");
}

TEST(Attribute, NamesMaxUtilizationClassAndSkipsIdle) {
  sim::Engine eng;
  sim::Resource busy0(eng, "pcie.host0.pio");
  sim::Resource busy1(eng, "pcie.host1.pio");
  sim::Resource mild(eng, "rnic.host0.tx");
  sim::Resource idle(eng, "rnic.host0.rx");
  obs::ResourceRegistry reg;
  reg.add("pcie.host0.pio", busy0);
  reg.add("pcie.host1.pio", busy1);
  reg.add("rnic.host0.tx", mild);
  reg.add("rnic.host0.rx", idle);

  busy0.acquire(ns(50));
  busy1.acquire(ns(90));
  mild.acquire(ns(20));
  eng.run_until(ns(100));

  obs::Attribution attr = obs::attribute(reg);
  ASSERT_FALSE(attr.empty());
  EXPECT_EQ(attr.bottleneck, "pcie.pio");
  EXPECT_EQ(attr.bottleneck_resource, "pcie.host1.pio");  // the max instance
  EXPECT_NEAR(attr.bottleneck_utilization, 0.9, 1e-9);
  // Idle rnic.rx did no work: only two classes appear, util-descending.
  ASSERT_EQ(attr.stages.size(), 2u);
  EXPECT_EQ(attr.stages[0].stage, "pcie.pio");
  EXPECT_EQ(attr.stages[0].ops, 2u);  // summed across instances
  EXPECT_EQ(attr.stages[1].stage, "rnic.tx");
}

TEST(Attribute, EmptyWhenNoWork) {
  sim::Engine eng;
  sim::Resource r(eng, "pcie.host0.pio");
  obs::ResourceRegistry reg;
  reg.add("pcie.host0.pio", r);
  eng.run_until(ns(100));
  EXPECT_TRUE(obs::attribute(reg).empty());
  EXPECT_TRUE(obs::attribute(reg).to_json().is_null());
}

TEST(FlightRecorder, RejectsNonsenseConfig) {
  sim::Engine eng;
  obs::ResourceRegistry reg;
  obs::FlightConfig bad;
  bad.interval = 0;
  EXPECT_THROW(obs::FlightRecorder(eng, reg, nullptr, bad),
               std::invalid_argument);
  bad.interval = 1;
  bad.ring = 0;
  EXPECT_THROW(obs::FlightRecorder(eng, reg, nullptr, bad),
               std::invalid_argument);
}

TEST(FlightRecorder, SamplesFixedWindowsWithDeltas) {
  sim::Engine eng;
  sim::Resource r(eng, "pcie.host0.pio");
  obs::ResourceRegistry reg;
  reg.add("pcie.host0.pio", r);

  obs::FlightConfig fc;
  fc.interval = ns(100);
  fc.source = "test";
  obs::FlightRecorder fl(eng, reg, nullptr, fc);
  fl.start();
  // Busy exactly in the first window, idle in the second.
  r.acquire(ns(60));
  eng.run_until(ns(200));
  fl.stop();

  ASSERT_EQ(fl.windows(), 2u);
  obs::Json doc = fl.to_json();
  EXPECT_EQ(doc["schema"].as_string(), "herd-timeseries/1");
  EXPECT_EQ(doc["source"].as_string(), "test");
  EXPECT_EQ(doc["interval_ns"].as_uint(), ns(100));
  const obs::Json& w0 = doc["windows"].elements()[0];
  const obs::Json& w1 = doc["windows"].elements()[1];
  EXPECT_EQ(get(w0, "busy_ns").elements()[0].as_uint(), ns(60));
  EXPECT_EQ(get(w0, "ops").elements()[0].as_uint(), 1u);
  EXPECT_NEAR(get(w0, "util").elements()[0].as_double(), 0.6, 1e-9);
  EXPECT_EQ(get(w1, "busy_ns").elements()[0].as_uint(), 0u);
  EXPECT_EQ(get(w1, "ops").elements()[0].as_uint(), 0u);
  EXPECT_TRUE(obs::validate_timeseries_json(doc).empty());
}

TEST(FlightRecorder, StopClosesPartialWindowAndDrainTerminates) {
  sim::Engine eng;
  sim::Resource r(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", r);
  obs::FlightConfig fc;
  fc.interval = ns(100);
  obs::FlightRecorder fl(eng, reg, nullptr, fc);
  fl.start();
  r.acquire(ns(30));
  eng.run_until(ns(150));  // one full window + half of the next
  fl.stop();
  EXPECT_FALSE(fl.running());
  ASSERT_EQ(fl.windows(), 2u);  // [0,100) + partial [100,150)
  obs::Json doc = fl.to_json();
  EXPECT_EQ(u64(doc["windows"].elements()[1], "t_end_ns"), ns(150));
  // The self-rescheduling tick must not keep the engine alive forever.
  eng.run();
  SUCCEED();
}

TEST(FlightRecorder, RingEvictsOldestAndCountsDropped) {
  sim::Engine eng;
  sim::Resource r(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", r);
  obs::FlightConfig fc;
  fc.interval = ns(10);
  fc.ring = 3;
  obs::FlightRecorder fl(eng, reg, nullptr, fc);
  fl.start();
  eng.run_until(ns(100));  // 10 full windows
  fl.stop();
  EXPECT_EQ(fl.windows(), 3u);
  EXPECT_EQ(fl.dropped_windows(), 7u);
  obs::Json doc = fl.to_json();
  EXPECT_EQ(doc["dropped_windows"].as_uint(), 7u);
  // Retained windows are the newest three, with original indices.
  EXPECT_EQ(u64(doc["windows"].elements()[0], "index"), 7u);
  // last_n narrows further and accounts the rest as dropped.
  obs::Json tail = fl.to_json(1);
  EXPECT_EQ(tail["windows"].size(), 1u);
  EXPECT_EQ(u64(tail["windows"].elements()[0], "index"), 9u);
  EXPECT_EQ(tail["dropped_windows"].as_uint(), 9u);
}

TEST(FlightRecorder, CounterDeltasPerWindow) {
  sim::Engine eng;
  obs::ResourceRegistry reg;
  obs::MetricRegistry metrics;
  obs::Counter& c = metrics.counter("rnic.tx_ops");
  obs::FlightConfig fc;
  fc.interval = ns(100);
  obs::FlightRecorder fl(eng, reg, &metrics, fc);
  c.inc(5);  // pre-start activity must not leak into the first window
  fl.start();
  eng.schedule_at(ns(50), [&] { c.inc(3); });
  eng.schedule_at(ns(150), [&] { c.inc(4); });
  eng.run_until(ns(200));
  fl.stop();
  obs::Json doc = fl.to_json();
  const auto& wins = doc["windows"].elements();
  ASSERT_EQ(wins.size(), 2u);
  EXPECT_EQ(u64(get(wins[0], "counters"), "rnic.tx_ops"), 3u);
  EXPECT_EQ(u64(get(wins[1], "counters"), "rnic.tx_ops"), 4u);
}

TEST(FlightRecorder, RestartDiscardsStaleTicksAndOldWindows) {
  sim::Engine eng;
  sim::Resource r(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", r);
  obs::FlightConfig fc;
  fc.interval = ns(50);
  obs::FlightRecorder fl(eng, reg, nullptr, fc);
  fl.start();
  eng.run_until(ns(100));
  fl.stop();
  EXPECT_EQ(fl.windows(), 2u);
  fl.start();  // restart: ring clears, stale scheduled ticks are inert
  eng.run_until(ns(200));
  fl.stop();
  EXPECT_EQ(fl.windows(), 2u);  // only the second epoch's windows
  obs::Json doc = fl.to_json();
  EXPECT_EQ(u64(doc["windows"].elements()[0], "t_begin_ns"), ns(100));
}

TEST(TimeseriesSchema, CatchesShapeDrift) {
  sim::Engine eng;
  sim::Resource r(eng, "x");
  obs::ResourceRegistry reg;
  reg.add("x", r);
  obs::FlightConfig fc;
  fc.interval = ns(100);
  obs::FlightRecorder fl(eng, reg, nullptr, fc);
  fl.start();
  eng.run_until(ns(100));
  fl.stop();
  obs::Json doc = fl.to_json();
  ASSERT_TRUE(obs::validate_timeseries_json(doc).empty());

  obs::Json bad = doc;
  bad["schema"] = obs::Json("herd-timeseries/2");
  EXPECT_FALSE(obs::validate_timeseries_json(bad).empty());

  // Window arrays are parallel to "resources": growing the name list
  // desynchronizes them and must be caught.
  bad = doc;
  bad["resources"].push_back(obs::Json("phantom"));
  EXPECT_FALSE(obs::validate_timeseries_json(bad).empty());

  bad = doc;
  bad["interval_ns"] = obs::Json(0.0);
  EXPECT_FALSE(obs::validate_timeseries_json(bad).empty());

  EXPECT_FALSE(obs::validate_timeseries_json(obs::Json()).empty());
}

// --- end-to-end attribution through the microbench drivers ----------------

microbench::TputSpec outbound_inline_spec(std::uint32_t payload) {
  microbench::TputSpec spec;
  spec.opcode = verbs::Opcode::kWrite;
  spec.transport = verbs::Transport::kUc;
  spec.inlined = true;
  spec.payload = payload;
  spec.window = 8;
  spec.signal_every = 4;
  return spec;
}

// Fig. 4's right side: a 192 B inline WRITE carries a 4-cacheline WQE. Before
// doorbell batching the PIO path saturated first; with WR chains only the
// head of each chain crosses PIO and the rest of the WQEs are fetched by DMA,
// so the bottleneck moves out to the wire. (The HERD_NO_DOORBELL_BATCH canary
// build restores per-WR doorbells and with them the pcie.pio ceiling.)
TEST(AttributionE2E, OutboundLargeInlineWriteNoLongerPioBound) {
  microbench::outbound_tput(cluster::ClusterConfig::apt(),
                            outbound_inline_spec(192), 16, us(250));
  const microbench::RunRecord& r = microbench::last_run();
  ASSERT_FALSE(r.attr.empty());
  EXPECT_NE(r.attr.bottleneck, "pcie.pio");
  EXPECT_EQ(r.attr.bottleneck, "fabric.tx");
}

// Fig. 4's left side: a 4 B inline WRITE is one cacheline; the RNIC tx
// pipeline, not PIO, limits throughput.
TEST(AttributionE2E, OutboundSmallInlineWriteIsRnicBound) {
  microbench::outbound_tput(cluster::ClusterConfig::apt(),
                            outbound_inline_spec(4), 16, us(250));
  const microbench::RunRecord& r = microbench::last_run();
  ASSERT_FALSE(r.attr.empty());
  EXPECT_EQ(r.attr.bottleneck, "rnic.tx");
}

// Inbound WRITEs land via DMA; starving the DMA-write path makes it the
// named bottleneck. A single client keeps the fabric rx port below
// saturation (many clients fan 16x line rate into one port, which
// saturates fabric.rx first and would mask the DMA stage).
TEST(AttributionE2E, InboundWriteWithStarvedDmaIsDmaBound) {
  cluster::ClusterConfig cc = cluster::ClusterConfig::apt();
  cc.pcie.dma_write_gbps = 1.0;
  microbench::TputSpec spec;
  spec.opcode = verbs::Opcode::kWrite;
  spec.transport = verbs::Transport::kUc;
  spec.inlined = false;
  spec.payload = 256;
  spec.window = 8;
  microbench::inbound_tput(cc, spec, 1, us(250));
  const microbench::RunRecord& r = microbench::last_run();
  ASSERT_FALSE(r.attr.empty());
  EXPECT_EQ(r.attr.bottleneck, "pcie.dma_wr");
}

// Same seed, same config => byte-identical flight recorder export. Chaos
// replay and CI artifact diffing both assume this.
TEST(AttributionE2E, TimeseriesByteIdenticalAcrossRuns) {
  microbench::outbound_tput(cluster::ClusterConfig::apt(),
                            outbound_inline_spec(64), 8, us(250));
  ASSERT_FALSE(microbench::last_run().timeseries.is_null());
  std::string first = microbench::last_run().timeseries.dump(2);
  microbench::outbound_tput(cluster::ClusterConfig::apt(),
                            outbound_inline_spec(64), 8, us(250));
  std::string second = microbench::last_run().timeseries.dump(2);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(obs::validate_timeseries_json(microbench::last_run().timeseries)
                  .empty());
}

}  // namespace
