// Integration tests: the full HERD stack (client -> UC WRITE -> request
// region -> MICA -> UD SEND -> client) on the simulated cluster.
#include <gtest/gtest.h>

#include "herd/testbed.hpp"

namespace herd::core {
namespace {

TestbedConfig small_config() {
  TestbedConfig cfg;
  cfg.herd.n_server_procs = 3;
  cfg.herd.n_clients = 6;
  cfg.herd.window = 4;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 2000;
  cfg.workload.value_len = 32;
  cfg.verify_values = true;
  return cfg;
}

TEST(HerdEndToEnd, GetsReturnPutValues) {
  TestbedConfig cfg = small_config();
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_EQ(r.bad, 0u);
  // Store preloaded with every key: GETs must mostly hit.
  EXPECT_GT(static_cast<double>(r.get_hits) /
                static_cast<double>(r.get_hits + r.get_misses),
            0.99);
}

TEST(HerdEndToEnd, WriteIntensiveWorkloadIsCorrect) {
  TestbedConfig cfg = small_config();
  cfg.workload.get_fraction = 0.5;
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.value_mismatches, 0u);
}

TEST(HerdEndToEnd, SendSendModeIsCorrect) {
  // §5.5's SEND/SEND-over-UD variant must be functionally identical.
  TestbedConfig cfg = small_config();
  cfg.herd.mode = RequestMode::kSendUd;
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_EQ(r.bad, 0u);
}

TEST(HerdEndToEnd, RequestsArriveInPollOrder) {
  // The §4.2 polling formula assumes per-(client, proc) round-robin slot
  // order; UC WRITEs on one QP are ordered, so no violations should occur.
  TestbedConfig cfg = small_config();
  HerdTestbed bed(cfg);
  bed.run(sim::ms(1), sim::ms(2));
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    EXPECT_EQ(bed.service().proc_stats(s).order_violations, 0u);
  }
}

TEST(HerdEndToEnd, KeyspaceIsPartitionedErew) {
  // Every proc serves only its partition: total requests spread roughly
  // evenly under a uniform workload.
  TestbedConfig cfg = small_config();
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    total += bed.service().proc_stats(s).requests;
  }
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(r.ops),
              static_cast<double>(r.ops) * 0.05);
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    EXPECT_NEAR(static_cast<double>(bed.service().proc_stats(s).requests),
                static_cast<double>(total) / cfg.herd.n_server_procs,
                static_cast<double>(total) * 0.1);
  }
}

TEST(HerdEndToEnd, NoopsKeepPipelineDraining) {
  // With a nearly idle workload the two-stage pipeline must be flushed by
  // no-ops (§4.1.1's deadlock avoidance), so every issued request completes.
  TestbedConfig cfg = small_config();
  cfg.herd.n_clients = 1;
  cfg.herd.window = 1;  // one outstanding request: worst case for the
                        // pipeline, which wants a successor to advance
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 100u);
  std::uint64_t noops = 0;
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    noops += bed.service().proc_stats(s).noops;
  }
  EXPECT_GT(noops, 0u);
}

TEST(HerdEndToEnd, UnloadedLatencyIsMicroseconds) {
  TestbedConfig cfg = small_config();
  cfg.herd.n_clients = 1;
  cfg.herd.window = 1;
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.avg_latency_us, 1.0);
  EXPECT_LT(r.avg_latency_us, 8.0);
}

TEST(HerdEndToEnd, LargeValuesUseNonInlinedSends) {
  TestbedConfig cfg = small_config();
  cfg.workload.value_len = 512;  // above the 144 B inline threshold
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 500u);
  EXPECT_EQ(r.value_mismatches, 0u);
}

TEST(HerdEndToEnd, ZipfWorkloadStaysCorrectAndBalanced) {
  TestbedConfig cfg = small_config();
  cfg.workload.zipf = true;
  cfg.workload.n_keys = 1u << 16;
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_EQ(r.value_mismatches, 0u);
  // MICA-style partitioning keeps the most loaded core within a small factor
  // of the least loaded (§5.7).
  auto pp = bed.per_proc_mops();
  double lo = pp[0], hi = pp[0];
  for (double m : pp) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_LT(hi / lo, 3.0);
}

TEST(HerdService, RequiredMemoryIsSufficient) {
  HerdConfig cfg;
  cfg.n_server_procs = 2;
  cfg.n_clients = 4;
  cfg.window = 2;
  std::uint64_t need = HerdService::required_memory(cfg);
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 1, need);
  cluster::CpuModel cpu;
  EXPECT_NO_THROW(HerdService(cl.host(0), cfg, cpu));
}

TEST(HerdService, ThrowsOnTooLittleMemory) {
  HerdConfig cfg;
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 1, 4096);
  cluster::CpuModel cpu;
  EXPECT_THROW(HerdService(cl.host(0), cfg, cpu), std::invalid_argument);
}

TEST(HerdEndToEnd, ThroughputScalesWithClients) {
  TestbedConfig cfg = small_config();
  cfg.verify_values = false;
  cfg.herd.n_clients = 2;
  HerdTestbed small(cfg);
  double small_mops = small.run(sim::ms(1), sim::ms(2)).mops;
  cfg.herd.n_clients = 12;
  HerdTestbed big(cfg);
  double big_mops = big.run(sim::ms(1), sim::ms(2)).mops;
  EXPECT_GT(big_mops, small_mops * 2);
}

TEST(HerdEndToEnd, ResponsesLeaveInChains) {
  // §4.3 doorbell batching: all responses completed in one scheduling
  // quantum leave in ONE chained post_send, so the per-proc chain stats
  // must show multi-response chains and the server's doorbell count must
  // sit well below its response count.
  TestbedConfig cfg = small_config();
  HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  ASSERT_GT(r.ops, 1000u);

  std::uint64_t chains = 0;
  std::uint64_t chained = 0;
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    const auto& ps = bed.service().proc_stats(s);
    chains += ps.resp_chains;
    chained += ps.resp_chained;
  }
  EXPECT_GT(chains, 0u);
  EXPECT_GE(chained, chains);
  EXPECT_GT(chained, r.ops / 2);  // the hot path carries the traffic

  const auto& pc = bed.cluster().host(0).pcie().counters();
  EXPECT_LT(pc.doorbells, chained);  // batching: fewer doorbells than WRs
}

TEST(HerdEndToEnd, ServiceAffinityIsOneQpPerCore) {
  // EREW partitioning (Fig. 13): proc s owns exactly QP s — the explicit
  // map the service asserts against when draining CQs and posting chains.
  TestbedConfig cfg = small_config();
  HerdTestbed bed(cfg);
  const auto& aff = bed.service().affinity();
  EXPECT_EQ(aff.n_cores(), cfg.herd.n_server_procs);
  EXPECT_EQ(aff.n_qps(), cfg.herd.n_server_procs);
  for (std::uint32_t s = 0; s < cfg.herd.n_server_procs; ++s) {
    EXPECT_TRUE(aff.owns(s, s));
    ASSERT_EQ(aff.qps_of(s).size(), 1u);
    EXPECT_EQ(aff.qps_of(s).front(), s);
  }
}

}  // namespace
}  // namespace herd::core
