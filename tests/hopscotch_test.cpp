// Unit + property tests: FaRM's hopscotch table (neighborhood = 6).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kv/hopscotch.hpp"
#include "workload/workload.hpp"

namespace herd::kv {
namespace {

struct Table {
  std::vector<std::byte> bucket_mem;
  std::vector<std::byte> arena;
  std::unique_ptr<HopscotchTable> t;

  explicit Table(HopscotchTable::Config cfg = {}) {
    bucket_mem.resize(HopscotchTable::bucket_mem_bytes(cfg));
    arena.resize(cfg.mode == HopscotchTable::ValueMode::kOutOfTable ? 1 << 20
                                                                    : 0);
    t = std::make_unique<HopscotchTable>(bucket_mem, arena, cfg);
  }
};

std::vector<std::byte> value_of(std::uint64_t rank, std::uint32_t len) {
  std::vector<std::byte> v(len);
  workload::WorkloadGenerator::fill_value(rank, v);
  return v;
}

TEST(Hopscotch, InsertGetRoundTripInline) {
  Table tb;
  auto key = hash_of_rank(1);
  ASSERT_TRUE(tb.t->insert(key, value_of(1, 32)));
  std::byte out[64];
  auto g = tb.t->get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, 32u);
  auto expect = value_of(1, 32);
  EXPECT_EQ(std::memcmp(out, expect.data(), 32), 0);
}

TEST(Hopscotch, InsertGetRoundTripOutOfTable) {
  HopscotchTable::Config cfg;
  cfg.mode = HopscotchTable::ValueMode::kOutOfTable;
  Table tb(cfg);
  auto key = hash_of_rank(2);
  ASSERT_TRUE(tb.t->insert(key, value_of(2, 300)));  // > inline capacity
  std::byte out[512];
  auto g = tb.t->get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, 300u);
  auto expect = value_of(2, 300);
  EXPECT_EQ(std::memcmp(out, expect.data(), 300), 0);
}

TEST(Hopscotch, InlineRejectsOversizedValue) {
  Table tb;
  EXPECT_FALSE(tb.t->insert(hash_of_rank(3), value_of(3, 33)));  // cap 32
  EXPECT_EQ(tb.t->stats().insert_failures, 1u);
}

TEST(Hopscotch, OverwriteAndErase) {
  Table tb;
  auto key = hash_of_rank(4);
  tb.t->insert(key, value_of(4, 8));
  tb.t->insert(key, value_of(7, 12));
  std::byte out[32];
  auto g = tb.t->get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, 12u);
  EXPECT_TRUE(tb.t->erase(key));
  EXPECT_FALSE(tb.t->get(key, out).found);
}

TEST(Hopscotch, NeighborhoodInvariantHolds) {
  // The hopscotch guarantee the remote protocol depends on: every stored key
  // is found within kNeighborhood buckets of its home — a single contiguous
  // READ suffices ("a key-value pair is stored in a small neighborhood of
  // the bucket that the key hashes to", §5.1.2).
  HopscotchTable::Config cfg;
  cfg.n_buckets = 1 << 12;
  Table tb(cfg);
  constexpr std::uint64_t kKeys = 2600;  // ~63% load
  std::uint64_t inserted = 0;
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    if (tb.t->insert(hash_of_rank(r), value_of(r, 16))) ++inserted;
  }
  EXPECT_GT(inserted, kKeys * 95 / 100);
  std::byte out[32];
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    auto key = hash_of_rank(r);
    // get() itself only scans the neighborhood, so a hit proves locality.
    auto g = tb.t->get(key, out);
    if (g.found) {
      auto expect = value_of(r, 16);
      EXPECT_EQ(std::memcmp(out, expect.data(), 16), 0);
    }
  }
  EXPECT_GT(tb.t->stats().displacements, 0u);  // hops actually happened
}

TEST(Hopscotch, RemoteScanParsesNeighborhood) {
  Table tb;
  auto key = hash_of_rank(10);
  tb.t->insert(key, value_of(10, 24));
  // A FaRM client READs neighborhood_bytes() from home_offset() and scans.
  auto raw = std::span<const std::byte>(tb.bucket_mem)
                 .subspan(tb.t->home_offset(key), tb.t->neighborhood_bytes());
  auto hit = tb.t->scan_neighborhood(raw, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value_len, 24u);
  auto expect = value_of(10, 24);
  EXPECT_EQ(std::memcmp(hit->inline_value.data(), expect.data(), 24), 0);
}

TEST(Hopscotch, RemoteScanOutOfTableReturnsPointer) {
  HopscotchTable::Config cfg;
  cfg.mode = HopscotchTable::ValueMode::kOutOfTable;
  Table tb(cfg);
  auto key = hash_of_rank(11);
  tb.t->insert(key, value_of(11, 100));
  auto raw = std::span<const std::byte>(tb.bucket_mem)
                 .subspan(tb.t->home_offset(key), tb.t->neighborhood_bytes());
  auto hit = tb.t->scan_neighborhood(raw, key);
  ASSERT_TRUE(hit.has_value());
  // Second READ: fetch value_len bytes at arena_offset.
  auto val = std::span<const std::byte>(tb.arena)
                 .subspan(hit->arena_offset, hit->value_len);
  auto expect = value_of(11, 100);
  EXPECT_EQ(std::memcmp(val.data(), expect.data(), 100), 0);
}

TEST(Hopscotch, ScanMissesAbsentKey) {
  Table tb;
  tb.t->insert(hash_of_rank(12), value_of(12, 8));
  auto key = hash_of_rank(13);
  auto raw = std::span<const std::byte>(tb.bucket_mem)
                 .subspan(tb.t->home_offset(key), tb.t->neighborhood_bytes());
  EXPECT_FALSE(tb.t->scan_neighborhood(raw, key).has_value());
}

TEST(Hopscotch, NeighborhoodBytesMatchFarmReadSizes) {
  // FaRM-em READs 6*(SK+SV): with 16 B keys + 32 B inline values and our
  // 4-byte length field, the neighborhood read is 6 strides.
  HopscotchTable::Config cfg;
  cfg.inline_value_capacity = 32;
  Table tb(cfg);
  EXPECT_EQ(tb.t->bucket_stride(), 16u + 4u + 32u);
  EXPECT_EQ(tb.t->neighborhood_bytes(), 6u * (16 + 4 + 32));
}

TEST(Hopscotch, HomeOffsetStrideAligned) {
  Table tb;
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(tb.t->home_offset(hash_of_rank(r)) % tb.t->bucket_stride(), 0u);
  }
}

TEST(Hopscotch, OutOfTableRequiresArena) {
  HopscotchTable::Config cfg;
  cfg.mode = HopscotchTable::ValueMode::kOutOfTable;
  std::vector<std::byte> mem(HopscotchTable::bucket_mem_bytes(cfg));
  EXPECT_THROW(HopscotchTable(mem, {}, cfg), std::invalid_argument);
}

TEST(Hopscotch, TooSmallSpanThrows) {
  HopscotchTable::Config cfg;
  std::vector<std::byte> mem(64);
  std::vector<std::byte> arena;
  EXPECT_THROW(HopscotchTable(mem, arena, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace herd::kv
