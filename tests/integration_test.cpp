// Cross-system integration tests: the paper's headline claims, asserted
// end-to-end across HERD and both emulated baselines.
#include <gtest/gtest.h>

#include "baselines/emulated_kv.hpp"
#include "herd/testbed.hpp"

namespace herd {
namespace {

double herd_mops(double put_frac, std::uint32_t value, std::uint32_t clients,
                 core::RequestMode mode = core::RequestMode::kWriteUc) {
  core::TestbedConfig cfg;
  cfg.herd.n_clients = clients;
  cfg.herd.mode = mode;
  cfg.workload.get_fraction = 1.0 - put_frac;
  cfg.workload.value_len = value;
  cfg.workload.n_keys = 1u << 15;
  cfg.herd.mica.bucket_count_log2 = 14;
  cfg.herd.mica.log_bytes = 16u << 20;
  core::HerdTestbed bed(cfg);
  return bed.run(sim::ms(1), sim::ms(2)).mops;
}

double emulated_mops(baselines::System sys, double put_frac,
                     std::uint32_t value) {
  baselines::EmulatedConfig cfg;
  cfg.system = sys;
  cfg.get_fraction = 1.0 - put_frac;
  cfg.value_size = value;
  cfg.window = 8;
  baselines::EmulatedKvTestbed bed(cfg);
  return bed.run(sim::ms(1), sim::ms(2)).mops;
}

TEST(PaperClaims, HerdSaturatesAt26Mops) {
  // Abstract: "supports up to 26 million key-value operations per second".
  // The paper's HERD posts one response per request; with doorbell-batched
  // response chains (a guideline from the authors' follow-up work, beyond
  // the 2014 implementation) the simulated server clears the paper's peak
  // by a modest margin. Floor at the paper's number, cap the overshoot.
  double mops = herd_mops(0.05, 32, 51);
  EXPECT_GE(mops, 26.0);
  EXPECT_NEAR(mops, 31.2, 2.0);
}

TEST(PaperClaims, HerdThroughputIndependentOfPutFraction) {
  // Fig. 9: "the throughput does not depend on the workload composition".
  double ri = herd_mops(0.05, 32, 51);
  double wi = herd_mops(0.50, 32, 51);
  double all_put = herd_mops(1.00, 32, 51);
  EXPECT_NEAR(ri, wi, ri * 0.05);
  EXPECT_NEAR(ri, all_put, ri * 0.05);
}

TEST(PaperClaims, HerdBeatsReadBasedStoresBy2x) {
  // "for small key-value items, our full system throughput ... is over 2x
  //  higher than recent RDMA-based key-value systems" (vs Pilaf and
  //  FaRM-em-VAR at 48 B items, read-intensive).
  double herd = herd_mops(0.05, 32, 51);
  double pilaf = emulated_mops(baselines::System::kPilafEmOpt, 0.05, 32);
  double farm_var = emulated_mops(baselines::System::kFarmEmVar, 0.05, 32);
  EXPECT_GT(herd, 2.0 * pilaf);
  // FaRM-em-VAR's two READs cap it at half the 26 Mops READ rate; with the
  // 5% PUT mix the gap lands just under 2x (paper: 26 vs 11.4 ~ 2.3x).
  EXPECT_GT(herd, 1.85 * farm_var);
}

TEST(PaperClaims, Fig9RelativeOrderReadIntensive) {
  // HERD > FaRM-em > FaRM-em-VAR > Pilaf-em-OPT at 5% PUT (Fig. 9 Apt).
  double herd = herd_mops(0.05, 32, 51);
  double farm = emulated_mops(baselines::System::kFarmEm, 0.05, 32);
  double farm_var = emulated_mops(baselines::System::kFarmEmVar, 0.05, 32);
  double pilaf = emulated_mops(baselines::System::kPilafEmOpt, 0.05, 32);
  EXPECT_GT(herd, farm);
  EXPECT_GT(farm, farm_var);
  EXPECT_GT(farm_var, pilaf);
}

TEST(PaperClaims, EmulatedPutThroughputExceedsGetThroughput) {
  // "Surprisingly, the PUT throughput in our emulated systems is much
  //  larger than their GET throughput" (§5.3).
  for (auto sys : {baselines::System::kPilafEmOpt,
                   baselines::System::kFarmEmVar}) {
    double gets = emulated_mops(sys, 0.05, 32);
    double puts = emulated_mops(sys, 1.00, 32);
    EXPECT_GT(puts, gets * 1.5) << baselines::system_name(sys);
  }
}

TEST(PaperClaims, HerdHoldsThroughputTo60ByteValues) {
  // Fig. 10 (Apt): "For up to 60-byte items, HERD delivers over 26 Mops".
  EXPECT_GT(herd_mops(0.05, 60, 51), 24.5);
  // And declines for large values (PIO-bound, then non-inlined).
  EXPECT_LT(herd_mops(0.05, 512, 51), 20.0);
}

TEST(PaperClaims, FarmEmDeclinesFasterThanHerdWithValueSize) {
  // Fig. 10: FaRM-em's 6*(SV+16) READ amplification saturates the link
  // quickly; HERD conserves wire bytes.
  double herd_128 = herd_mops(0.05, 128, 51);
  double farm_128 = emulated_mops(baselines::System::kFarmEm, 0.05, 128);
  EXPECT_GT(herd_128, farm_128 * 1.5);
}

TEST(PaperClaims, ConvergenceAtKilobyteValues) {
  // Fig. 10: "For large values, the performance of HERD, FaRM-em, and
  //  Pilaf-em-OPT are within 10% of each other". For the two-READ systems
  //  the gap collapses because everyone is wire-bound moving ~1 KB per GET;
  //  we allow a wider band than the paper's 10%. (FaRM-em's *inline* mode
  //  amplifies READs to 6 KB at this size and falls behind — the very
  //  effect Fig. 10 shows on its way down.)
  double herd = herd_mops(0.05, 1000, 51);
  double pilaf = emulated_mops(baselines::System::kPilafEmOpt, 0.05, 1000);
  double farm_var = emulated_mops(baselines::System::kFarmEmVar, 0.05, 1000);
  EXPECT_LT(std::abs(herd - pilaf) / herd, 0.35);
  EXPECT_LT(std::abs(herd - farm_var) / herd, 0.35);
}

TEST(PaperClaims, SendSendVariantCostsAFewMops) {
  // §5.5: "a 4-5 Mops decrease to this change". Batched response posting
  // lifts both variants, which stretches the absolute gap a little past
  // the paper's 4-5 — the claim is the ordering and its rough size.
  double write_send = herd_mops(0.05, 32, 51);
  double send_send = herd_mops(0.05, 32, 51, core::RequestMode::kSendUd);
  EXPECT_GT(write_send - send_send, 2.0);
  EXPECT_LT(write_send - send_send, 11.0);
}

TEST(PaperClaims, SusitnaLowerThanApt) {
  // §5: "the slower PCIe 2.0 bus reduces the throughput of all compared
  // systems."
  core::TestbedConfig cfg;
  cfg.cluster = cluster::ClusterConfig::susitna();
  cfg.herd.n_clients = 51;
  cfg.workload.value_len = 32;
  cfg.workload.n_keys = 1u << 15;
  cfg.herd.mica.bucket_count_log2 = 14;
  cfg.herd.mica.log_bytes = 16u << 20;
  core::HerdTestbed bed(cfg);
  double susitna = bed.run(sim::ms(1), sim::ms(2)).mops;
  // Doorbell batching narrows the gap — most of Susitna's penalty was the
  // per-response PIO doorbell over the slower PCIe 2.0 bus, and chained
  // posts replace those with WQE-fetch DMAs — but the ordering the paper
  // claims must survive: the slower bus still costs throughput.
  double apt = herd_mops(0.05, 32, 51);
  EXPECT_LT(susitna, apt * 0.97);
  EXPECT_GT(susitna, apt * 0.5);
}

TEST(PaperClaims, FiveCoresDeliver95Percent) {
  // Fig. 13: "HERD is able to deliver over 95% of its maximum throughput
  //  with 5 CPU cores."
  core::TestbedConfig cfg;
  cfg.workload.get_fraction = 0.5;
  cfg.workload.value_len = 32;
  cfg.workload.n_keys = 1u << 15;
  cfg.herd.mica.bucket_count_log2 = 14;
  cfg.herd.mica.log_bytes = 16u << 20;
  cfg.herd.n_clients = 51;
  cfg.herd.n_server_procs = 5;
  core::HerdTestbed five(cfg);
  double five_mops = five.run(sim::ms(1), sim::ms(2)).mops;
  cfg.herd.n_server_procs = 6;
  core::HerdTestbed six(cfg);
  double six_mops = six.run(sim::ms(1), sim::ms(2)).mops;
  EXPECT_GT(five_mops, six_mops * 0.95);
}

}  // namespace
}  // namespace herd
