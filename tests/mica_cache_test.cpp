// Unit + property tests: MICA-style lossy index + circular log cache.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/mica_cache.hpp"
#include "kv/partition.hpp"
#include "sim/rng.hpp"
#include "workload/workload.hpp"

namespace herd::kv {
namespace {

MicaCache::Config tiny() {
  MicaCache::Config cfg;
  cfg.bucket_count_log2 = 8;  // 256 buckets * 8 ways = 2048 entries
  cfg.log_bytes = 256 << 10;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t rank, std::uint32_t len) {
  std::vector<std::byte> v(len);
  workload::WorkloadGenerator::fill_value(rank, v);
  return v;
}

TEST(MicaCache, PutGetRoundTrip) {
  MicaCache c(tiny());
  auto key = hash_of_rank(1);
  auto val = value_of(1, 32);
  c.put(key, val);
  std::byte out[64];
  auto r = c.get(key, out);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value_len, 32u);
  EXPECT_EQ(std::memcmp(out, val.data(), 32), 0);
}

TEST(MicaCache, MissOnAbsentKey) {
  MicaCache c(tiny());
  std::byte out[64];
  auto r = c.get(hash_of_rank(999), out);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(c.stats().get_misses, 1u);
}

TEST(MicaCache, OverwriteReplacesValue) {
  MicaCache c(tiny());
  auto key = hash_of_rank(2);
  c.put(key, value_of(2, 16));
  c.put(key, value_of(3, 24));
  std::byte out[64];
  auto r = c.get(key, out);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value_len, 24u);
  auto expect = value_of(3, 24);
  EXPECT_EQ(std::memcmp(out, expect.data(), 24), 0);
}

TEST(MicaCache, EraseRemoves) {
  MicaCache c(tiny());
  auto key = hash_of_rank(4);
  c.put(key, value_of(4, 8));
  EXPECT_TRUE(c.erase(key));
  EXPECT_FALSE(c.erase(key));
  std::byte out[16];
  EXPECT_FALSE(c.get(key, out).found);
}

TEST(MicaCache, AccessCountsMatchPaperModel) {
  // "each GET requires up to two random memory lookups, and each PUT
  //  requires one" (§4.1).
  MicaCache c(tiny());
  auto key = hash_of_rank(5);
  auto pr = c.put(key, value_of(5, 8));
  EXPECT_EQ(pr.accesses, 1);
  std::byte out[16];
  auto gr = c.get(key, out);
  EXPECT_EQ(gr.accesses, 2);  // bucket + log entry
  auto miss = c.get(hash_of_rank(12345), out);
  EXPECT_LE(miss.accesses, 2);
}

TEST(MicaCache, ZeroKeyhashRejected) {
  MicaCache c(tiny());
  EXPECT_THROW(c.put(KeyHash{0, 0}, value_of(1, 8)), std::invalid_argument);
}

TEST(MicaCache, OversizedValueRejected) {
  MicaCache c(tiny());
  std::vector<std::byte> big(MicaCache::kMaxValue + 1);
  EXPECT_THROW(c.put(hash_of_rank(1), big), std::length_error);
}

TEST(MicaCache, TooSmallLogRejected) {
  MicaCache::Config cfg = tiny();
  cfg.log_bytes = 64;
  EXPECT_THROW(MicaCache{cfg}, std::invalid_argument);
}

TEST(MicaCache, SmallBufferThrows) {
  MicaCache c(tiny());
  c.put(hash_of_rank(6), value_of(6, 64));
  std::byte out[8];
  EXPECT_THROW(c.get(hash_of_rank(6), out), std::length_error);
}

TEST(MicaCache, LossyIndexEvictsUnderPressure) {
  // Insert far more keys than index capacity: evictions must occur, the
  // structure must stay consistent, and recent keys should largely survive.
  MicaCache::Config cfg = tiny();
  cfg.log_bytes = 8 << 20;  // ample log so the index is the constraint
  MicaCache c(cfg);
  constexpr std::uint64_t kKeys = 10000;  // vs 2048 entries
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    c.put(hash_of_rank(r), value_of(r, 16));
  }
  EXPECT_GT(c.stats().index_evictions, 0u);
  std::byte out[32];
  int found = 0;
  for (std::uint64_t r = kKeys - 500; r < kKeys; ++r) {
    auto g = c.get(hash_of_rank(r), out);
    if (g.found) {
      ++found;
      auto expect = value_of(r, 16);
      EXPECT_EQ(std::memcmp(out, expect.data(), 16), 0);
    }
  }
  EXPECT_GT(found, 250);  // most recent keys survive
}

TEST(MicaCache, LogWrapInvalidatesLappedEntries) {
  MicaCache::Config cfg;
  cfg.bucket_count_log2 = 10;
  cfg.log_bytes = 16 << 10;  // tiny log: ~16 entries of 1 KB
  MicaCache c(cfg);
  std::vector<std::byte> big(900);
  auto old_key = hash_of_rank(1);
  c.put(old_key, big);
  for (std::uint64_t r = 2; r < 64; ++r) c.put(hash_of_rank(r), big);
  EXPECT_GT(c.stats().log_wraps, 0u);
  std::byte out[1024];
  auto g = c.get(old_key, out);
  // The first entry was overwritten by the FIFO log; it must NOT return
  // stale bytes.
  EXPECT_FALSE(g.found);
}

TEST(MicaCache, NeverReturnsWrongBytes) {
  // Adversarial churn: whatever the cache returns must be exactly what the
  // most recent put for that key stored.
  MicaCache::Config cfg;
  cfg.bucket_count_log2 = 6;
  cfg.log_bytes = 64 << 10;
  MicaCache c(cfg);
  sim::Pcg32 rng(5);
  std::unordered_map<std::uint64_t, std::uint32_t> last_len;
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t r = rng.next_below(300);
    std::uint32_t len = 1 + rng.next_below(200);
    if (rng.next_double() < 0.6) {
      c.put(hash_of_rank(r), value_of(r * 1000 + len, len));
      last_len[r] = len;
    } else {
      std::byte out[256];
      auto g = c.get(hash_of_rank(r), out);
      if (g.found) {
        ASSERT_TRUE(last_len.count(r));
        EXPECT_EQ(g.value_len, last_len[r]);
        auto expect = value_of(r * 1000 + last_len[r], last_len[r]);
        EXPECT_EQ(std::memcmp(out, expect.data(), last_len[r]), 0);
      }
    }
  }
  EXPECT_GT(c.stats().get_hits, 0u);
}

class MicaValueSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MicaValueSizeTest, RoundTripsEverySize) {
  MicaCache c(tiny());
  std::uint32_t len = GetParam();
  auto key = hash_of_rank(len);
  c.put(key, value_of(len, len));
  std::byte out[1024];
  auto g = c.get(key, out);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.value_len, len);
  auto expect = value_of(len, len);
  EXPECT_EQ(std::memcmp(out, expect.data(), len), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MicaValueSizeTest,
                         ::testing::Values(0, 1, 7, 8, 15, 16, 32, 100, 255,
                                           512, 1000, 1024));

TEST(MicaCache, StatsAccounting) {
  MicaCache c(tiny());
  c.put(hash_of_rank(1), value_of(1, 8));
  std::byte out[16];
  c.get(hash_of_rank(1), out);
  c.get(hash_of_rank(2), out);
  EXPECT_EQ(c.stats().puts, 1u);
  EXPECT_EQ(c.stats().gets, 2u);
  EXPECT_EQ(c.stats().get_hits, 1u);
  EXPECT_EQ(c.stats().get_misses, 1u);
}

// ---------------------------------------------------------------------------
// PartitionPlan: one machine budget split into EREW per-core partitions.

TEST(PartitionPlan, SplitsBudgetUniformly) {
  MicaCache::Config machine;
  machine.bucket_count_log2 = 18;
  machine.log_bytes = 192u << 20;
  machine.seed = 7;

  auto plan = PartitionPlan::split(machine, 6);
  ASSERT_EQ(plan.n_partitions(), 6u);
  for (std::uint32_t p = 0; p < 6; ++p) {
    // ceil(log2 6) = 3 index bits move from per-partition to the shard id.
    EXPECT_EQ(plan.partition(p).bucket_count_log2, 15u);
    EXPECT_EQ(plan.partition(p).log_bytes, (192u << 20) / 6);
  }
  // Uniformity over generosity: the division remainder stays unallotted.
  EXPECT_LE(plan.total_log_bytes(), machine.log_bytes);
  EXPECT_EQ(plan.machine().log_bytes, machine.log_bytes);
}

TEST(PartitionPlan, PartitionZeroKeepsTheMachineSeed) {
  MicaCache::Config machine;
  machine.seed = 42;
  auto plan = PartitionPlan::split(machine, 4);
  EXPECT_EQ(plan.partition(0).seed, 42u);
  // And the rest decorrelate: all four seeds distinct.
  for (std::uint32_t p = 1; p < 4; ++p) {
    for (std::uint32_t q = 0; q < p; ++q) {
      EXPECT_NE(plan.partition(p).seed, plan.partition(q).seed);
    }
  }
}

TEST(PartitionPlan, SinglePartitionIsTheMachineConfig) {
  MicaCache::Config machine;
  machine.bucket_count_log2 = 16;
  machine.log_bytes = 16u << 20;
  machine.seed = 9;
  auto plan = PartitionPlan::split(machine, 1);
  ASSERT_EQ(plan.n_partitions(), 1u);
  EXPECT_EQ(plan.partition(0).bucket_count_log2, 16u);
  EXPECT_EQ(plan.partition(0).log_bytes, 16u << 20);
  EXPECT_EQ(plan.partition(0).seed, 9u);
}

TEST(PartitionPlan, TinyBudgetsStillIndex) {
  MicaCache::Config machine;
  machine.bucket_count_log2 = 2;
  machine.log_bytes = 1u << 16;
  auto plan = PartitionPlan::split(machine, 32);  // shift 5 > 2 available
  for (std::uint32_t p = 0; p < 32; ++p) {
    EXPECT_EQ(plan.partition(p).bucket_count_log2, 1u);  // floored, not 0
  }
}

TEST(PartitionPlan, RejectsZeroPartitions) {
  MicaCache::Config machine;
  EXPECT_THROW(PartitionPlan::split(machine, 0), std::invalid_argument);
}

TEST(PartitionPlan, PartitionedCachesServeDisjointKeySpaces) {
  MicaCache::Config machine;
  machine.bucket_count_log2 = 12;
  machine.log_bytes = 4u << 20;
  auto plan = PartitionPlan::split(machine, 4);

  // Build one cache per partition, insert each key into the partition that
  // owns it (shard = rank % 4), and verify EREW: the owner hits, others
  // were never asked.
  std::vector<std::unique_ptr<MicaCache>> parts;
  for (std::uint32_t p = 0; p < 4; ++p) {
    parts.push_back(std::make_unique<MicaCache>(plan.partition(p)));
  }
  std::vector<std::byte> val(16, std::byte{0x3C});
  for (std::uint64_t r = 0; r < 400; ++r) {
    parts[r % 4]->put(hash_of_rank(r), val);
  }
  std::byte out[16];
  std::uint64_t hits = 0;
  for (std::uint64_t r = 0; r < 400; ++r) {
    if (parts[r % 4]->get(hash_of_rank(r), out).found) ++hits;
  }
  EXPECT_GT(hits, 350u);  // lossy index: near-total, not perfect, recall
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(parts[p]->stats().puts, 100u);
    EXPECT_EQ(parts[p]->stats().gets, 100u);
  }
}

}  // namespace
}  // namespace herd::kv
