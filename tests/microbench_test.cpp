// Tests of the microbenchmark drivers against the paper's §3 observations —
// these double as regression tests for the calibrated substrate.
#include <gtest/gtest.h>

#include "microbench/echo.hpp"
#include "microbench/throughput.hpp"
#include "microbench/verb_latency.hpp"

namespace herd::microbench {
namespace {

const cluster::ClusterConfig kApt = cluster::ClusterConfig::apt();

TEST(VerbLatency, ReadAndWriteTrackEachOther) {
  // "The latencies for READ and WRITE are similar because the length of the
  //  network/PCIe path travelled is identical" (§3.2.1).
  auto r = verb_latency(kApt, 32, 300);
  EXPECT_NEAR(r.write_us, r.read_us, r.read_us * 0.15);
}

TEST(VerbLatency, InliningCutsLatencySignificantly) {
  auto r = verb_latency(kApt, 32, 300);
  EXPECT_LT(r.write_inline_us, r.write_us - 0.25);
}

TEST(VerbLatency, UnsignaledWriteIsHalfAnEcho) {
  // "the one-way WRITE latency is about half of the READ latency" — the
  // ECHO is two unsignaled WRITEs, and tracks READ for small payloads.
  auto r = verb_latency(kApt, 32, 300);
  EXPECT_NEAR(r.echo_us, r.read_us, r.read_us * 0.25);
  EXPECT_NEAR(r.echo_us / 2.0, 1.0, 0.4);  // ~1 us half-RTT (§2.2.1)
}

TEST(VerbLatency, GrowsWithPayload) {
  auto small = verb_latency(kApt, 16, 300);
  auto large = verb_latency(kApt, 1024, 300);
  EXPECT_GT(large.read_us, small.read_us);
  EXPECT_GT(large.write_us, small.write_us);
}

TEST(InboundTput, WritesBeatReadsByAboutATHird) {
  // "WRITEs achieve 35 Mops, which is about 34% higher than the maximum
  //  READ throughput (26 Mops)" (§3.2.2).
  TputSpec wr{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 32, 32, 4};
  TputSpec rd{verbs::Opcode::kRead, verbs::Transport::kRc, false, 32, 16, 1};
  double w = inbound_tput(kApt, wr);
  double r = inbound_tput(kApt, rd);
  EXPECT_NEAR(w, 35.0, 1.5);
  EXPECT_NEAR(r, 26.0, 1.5);
  EXPECT_GT(w / r, 1.25);
}

TEST(InboundTput, UcAndRcWritesNearlyIdentical) {
  TputSpec uc{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 32, 32, 4};
  TputSpec rc{verbs::Opcode::kWrite, verbs::Transport::kRc, true, 32, 32, 4};
  double u = inbound_tput(kApt, uc);
  double r = inbound_tput(kApt, rc);
  EXPECT_NEAR(u, r, u * 0.1);
}

TEST(OutboundTput, ReadsHoldTwentyTwoMops) {
  TputSpec rd{verbs::Opcode::kRead, verbs::Transport::kRc, false, 32, 16, 1};
  EXPECT_NEAR(outbound_tput(kApt, rd), 22.0, 1.5);
}

TEST(OutboundTput, DoorbellBatchingFlattensInlineWriteKnee) {
  // One write-combining cacheline holds a 36 B WQE + 28 B payload; per-WR
  // posting halves PIO throughput beyond that (§3.2.2's 64-byte staircase).
  // With doorbell batching only the chain head crosses PIO, so the knee
  // disappears and both payloads run at the (higher) wire-limited rate.
  // The HERD_NO_DOORBELL_BATCH canary restores the staircase.
  TputSpec below{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 28, 8, 4};
  TputSpec above{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 40, 8, 4};
  double b = outbound_tput(kApt, below);
  double a = outbound_tput(kApt, above);
  EXPECT_NEAR(b, a, b * 0.1);  // knee gone: no staircase between 28 and 40 B
  EXPECT_GT(b, 28.0);          // and both clear the old PIO-capped plateau
}

TEST(OutboundTput, DoorbellBatchingClosesUdSendGap) {
  // Per-WR posting: "due to the larger datagram header, the throughput for
  //  SEND-UD drops for smaller payload sizes than for WRITEs." Chained WQEs
  // are DMA-fetched, so the 65 B UD WQE no longer pays the PIO staircase and
  // SEND-UD pulls even with WRITE at the same payload.
  TputSpec wr{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 24, 8, 4};
  TputSpec ud{verbs::Opcode::kSend, verbs::Transport::kUd, true, 24, 8, 4};
  double w = outbound_tput(kApt, wr);
  double u = outbound_tput(kApt, ud);
  EXPECT_NEAR(w, u, w * 0.1);
}

TEST(Echo, OptimizationLadderIsMonotonic) {
  for (auto kind :
       {EchoKind::kSendSend, EchoKind::kWriteWrite, EchoKind::kWriteSend}) {
    double prev = 0;
    for (int lvl = 0; lvl <= 3; ++lvl) {
      EchoOpts o;
      o.opt_level = lvl;
      double m = echo_tput(kApt, kind, o);
      EXPECT_GE(m, prev * 0.98) << echo_kind_name(kind) << " lvl " << lvl;
      prev = m;
    }
  }
}

TEST(Echo, FullyOptimizedMatchesPaperAnchors) {
  EchoOpts o;  // fully optimized by default
  double ss = echo_tput(kApt, EchoKind::kSendSend, o);
  double ww = echo_tput(kApt, EchoKind::kWriteWrite, o);
  double ws = echo_tput(kApt, EchoKind::kWriteSend, o);
  EXPECT_NEAR(ss, 21.0, 1.5);  // "21 Mops" (§3.2.2)
  EXPECT_NEAR(ww, 26.0, 1.5);  // "maximum throughput (26 Mops)"
  EXPECT_NEAR(ws, 26.0, 1.5);  // "this hybrid also achieves 26 Mops"
}

TEST(Echo, SendSendBeatsThreeQuartersOfReadRate) {
  // The paper's refutation: optimized SEND/RECV echoes beat 3/4 of the
  // 26 Mops READ rate, so one echo beats 2.6 READs.
  EchoOpts o;
  EXPECT_GT(echo_tput(kApt, EchoKind::kSendSend, o), 26.0 * 0.75);
}

TEST(AllToAll, InboundScalesOutboundCollapses) {
  TputSpec wr{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 32, 32, 4};
  double in16 = all_to_all_inbound(kApt, wr, 16);
  double out16 = all_to_all_outbound(kApt, wr, 16);
  double out4 = all_to_all_outbound(kApt, wr, 4);
  EXPECT_NEAR(in16, 35.0, 2.0);        // inbound flat at 256 QPs
  EXPECT_LT(out16, out4 * 0.45);       // outbound collapses
  EXPECT_NEAR(out16 / 35.0, 0.21, 0.08);  // "degrades to 21% of the maximum"
}

TEST(AllToAll, UdOutboundScales) {
  TputSpec ud{verbs::Opcode::kSend, verbs::Transport::kUd, true, 32, 32, 4};
  double out4 = all_to_all_outbound(kApt, ud, 4);
  double out16 = all_to_all_outbound(kApt, ud, 16);
  // §3.3 promises only a slight sag. Doorbell batching lifts the 4-proc
  // number above the old PIO cap, while at 16 procs the chained WQE fetches
  // of all procs contend on the DMA-read path, so the relative sag widens a
  // little — but aggregate throughput must not collapse.
  EXPECT_GT(out16, out4 * 0.75);
  EXPECT_GT(out16, 22.0);
}

TEST(ManyToOne, SixteenHundredClientsSustainLineRate) {
  // §3.3: 1600 processes over 16 machines, WRITEs over UC -> ~30 Mops.
  TputSpec wr{verbs::Opcode::kWrite, verbs::Transport::kUc, true, 32, 4, 4};
  EXPECT_GT(many_to_one_tput(kApt, wr, 1600, 16), 28.0);
}

TEST(Prefetch, FiveCoresReachPeakWithPrefetching) {
  EchoOpts o;
  o.mem_accesses = 8;
  o.n_server_procs = 5;
  o.prefetch = true;
  double with = echo_tput(kApt, EchoKind::kWriteSend, o);
  o.prefetch = false;
  double without = echo_tput(kApt, EchoKind::kWriteSend, o);
  EXPECT_GT(with, 18.0);        // "5 cores can deliver the peak... N = 8"
  EXPECT_GT(with, without * 2); // prefetching pays
}

}  // namespace
}  // namespace herd::microbench
