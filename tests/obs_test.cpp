// herd::obs — registry, snapshot, tracer, and bench-report schema tests.
//
// Covers the observability contract the rest of the repo leans on:
//   - MetricRegistry registration is strict (duplicate / malformed names
//     throw) and snapshots are deterministic;
//   - two identically-seeded testbed runs produce identical snapshots and
//     byte-identical Chrome trace exports;
//   - a traced request's spans appear in simulated-time order (client post,
//     RNIC RX/dispatch/TX, PCIe DMA, MICA op);
//   - Snapshot round-trips through JSON;
//   - validate_bench_json accepts what BenchReport writes and rejects
//     documents that drift from the herd-bench/1 schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "herd/testbed.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace herd::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricRegistry, LinksAndSnapshotsTypedHandles) {
  MetricRegistry reg;
  Counter c;
  Gauge g;
  reg.link("rnic.host0.rx_ops", &c);
  reg.link("herd.utilization", &g);
  c.inc(41);
  ++c;
  g.set(0.75);

  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.value("rnic.host0.rx_ops"), 42u);
  EXPECT_DOUBLE_EQ(s.gauge("herd.utilization"), 0.75);
  EXPECT_TRUE(s.has("rnic.host0.rx_ops"));
  EXPECT_FALSE(s.has("rnic.host1.rx_ops"));
  EXPECT_EQ(s.value("rnic.host1.rx_ops"), 0u);  // absent reads as zero
}

TEST(MetricRegistry, DuplicateNameThrows) {
  MetricRegistry reg;
  Counter a, b;
  reg.link("fabric.loss", &a);
  EXPECT_THROW(reg.link("fabric.loss", &b), std::logic_error);
  // The kind does not matter: a gauge cannot squat on a counter name either.
  Gauge g;
  EXPECT_THROW(reg.link("fabric.loss", &g), std::logic_error);
}

TEST(MetricRegistry, MalformedNameThrows) {
  MetricRegistry reg;
  Counter c;
  EXPECT_THROW(reg.link("", &c), std::logic_error);
  EXPECT_THROW(reg.link("has space", &c), std::logic_error);
  EXPECT_THROW(reg.link("emoji.\xf0\x9f\x90\x9b", &c), std::logic_error);
}

TEST(MetricRegistry, CallbackMetricsEvaluateAtSnapshotTime) {
  MetricRegistry reg;
  std::uint64_t backing = 1;
  reg.counter_fn("derived.total", [&] { return backing; });
  backing = 7;  // mutated after registration, before snapshot
  EXPECT_EQ(reg.snapshot().value("derived.total"), 7u);
}

TEST(MetricRegistry, OwnedCounterSurvivesRegistryGrowth) {
  MetricRegistry reg;
  Counter& first = reg.counter("owned.first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("owned.n" + std::to_string(i));
  }
  first.inc(5);  // must not have been invalidated by growth
  EXPECT_EQ(reg.snapshot().value("owned.first"), 5u);
}

// ---------------------------------------------------------------- snapshot

TEST(Snapshot, JsonRoundTripPreservesEverything) {
  Snapshot s;
  s.set_counter("a.b", 3);
  s.set_counter("a.c", 0);
  s.set_gauge("g.x", 1.5);
  HistogramStats h;
  h.count = 10;
  h.min = 100;
  h.max = 9000;
  h.mean_ns = 4.5;
  h.p50_ns = 4.0;
  h.p95_ns = 8.0;
  h.p99_ns = 9.0;
  s.set_histogram("lat.e2e", h);

  Snapshot back = Snapshot::from_json(Json::parse(s.to_json().dump()));
  EXPECT_EQ(back, s);
}

TEST(Snapshot, SerializationIsSorted) {
  // Deterministic exports need a canonical key order regardless of
  // registration order.
  Snapshot s;
  s.set_counter("z.last", 1);
  s.set_counter("a.first", 2);
  std::string text = s.to_json().dump();
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, SamplingOpensEveryNthWindow) {
  Tracer t;
  EXPECT_FALSE(t.sample());  // disabled -> never samples
  t.enable(3);
  int hits = 0;
  for (int i = 0; i < 9; ++i) {
    if (t.sample()) {
      ++hits;
      EXPECT_TRUE(t.active());
      t.release();
    }
  }
  EXPECT_EQ(hits, 3);
  EXPECT_FALSE(t.active());
}

TEST(Tracer, ProducerGateRecordsOnlyInsideWindow) {
  Tracer t;
  t.enable(1);
  EXPECT_FALSE(tracing(&t));  // enabled but no window open
  ASSERT_TRUE(t.sample());
  EXPECT_TRUE(tracing(&t));
  t.span("core", "work", 100, 200);
  t.release();
  EXPECT_FALSE(tracing(&t));
  EXPECT_FALSE(tracing(nullptr));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].name, "work");
}

TEST(Tracer, ChromeJsonIsValidAndDeterministic) {
  auto build = [] {
    Tracer t;
    t.span("client", "request", sim::us(1), sim::us(5));
    t.span("rnic", "rx", sim::us(2), sim::us(3), "bytes=64");
    t.instant("rnic", "qp_cache_miss", sim::us(2));
    return t;
  };
  std::string a = build().chrome_json();
  std::string b = build().chrome_json();
  EXPECT_EQ(a, b);

  Json doc = Json::parse(a);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 3 recorded events + thread_name metadata for the two tracks.
  EXPECT_GE(events->size(), 5u);
}

// --------------------------------------------- causal spans (herd-trace/2)

TEST(Tracer, SpanBeginEndExportsCompleteEventWithCausalArgs) {
  Tracer t;
  TraceCtx root_ctx{0x300000007ULL, 0};
  SpanId root = t.span_begin("client0", "request", sim::us(1), "seq=7",
                             root_ctx);
  ASSERT_NE(root, 0u);
  EXPECT_EQ(t.open_spans(), 1u);
  t.span("client0", "client_post", sim::us(1), sim::us(2), {},
         TraceCtx{0x300000007ULL, root});
  t.span_end(root, sim::us(9));
  EXPECT_EQ(t.open_spans(), 0u);

  Json doc = Json::parse(t.chrome_json());
  EXPECT_EQ(doc.find("schema")->as_string(), kTraceSchema);
  EXPECT_TRUE(validate_trace_json(doc).empty());
  // Both spans export as complete "X" events carrying the trace id; the
  // child's parent arg names the root span.
  int xs = 0;
  bool saw_child = false;
  for (const Json& e : doc.find("traceEvents")->elements()) {
    const Json* ph = e.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    ++xs;
    const Json* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("trace")->as_string(), "0x300000007");
    if (e.find("name")->as_string() == "client_post") {
      saw_child = true;
      EXPECT_EQ(args->find("parent")->as_uint(), root);
    }
  }
  EXPECT_EQ(xs, 2);
  EXPECT_TRUE(saw_child);
}

TEST(Tracer, SpanEndOnUnknownIdIsIgnored) {
  Tracer t;
  SpanId id = t.span_begin("proc0", "drr_wait", sim::us(3));
  t.span_end(id + 7, sim::us(4));  // bogus id: no effect
  EXPECT_EQ(t.open_spans(), 1u);
  t.span_end(id, sim::us(4));
  t.span_end(id, sim::us(5));  // double close: no effect, no crash
  EXPECT_EQ(t.open_spans(), 0u);
}

TEST(Tracer, OpenSpanExportsBPhaseWhichValidatorRejects) {
  Tracer t;
  t.span_begin("proc0", "drr_wait", sim::us(3));
  EXPECT_EQ(t.open_spans(), 1u);
  Json doc = Json::parse(t.chrome_json());
  std::vector<std::string> problems = validate_trace_json(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unpaired begin-span"), std::string::npos);
}

TEST(TraceValidator, RejectsSchemaDrift) {
  Tracer t;
  t.span("client", "request", sim::us(1), sim::us(5));
  Json doc = Json::parse(t.chrome_json());
  ASSERT_TRUE(validate_trace_json(doc).empty());
  doc["schema"] = Json("herd-trace/1");
  EXPECT_FALSE(validate_trace_json(doc).empty());
}

// ----------------------------------------------- per-request tail profiler

TEST(TailProfiler, StagesTelescopeExactlyToTotal) {
  TailProfiler tp;
  tp.enable();
  tp.begin(7, sim::us(10));
  tp.stage(7, "client_post", sim::us(11));
  tp.stage(7, "net_in", sim::us(14));
  tp.stage(7, "mica_op", sim::us(15));
  tp.finish(7, "ok", sim::us(20), "net_out");
  ASSERT_EQ(tp.finished(), 1u);
  const TailProfiler::Sample& s = tp.samples()[0];
  EXPECT_EQ(s.total, sim::us(10));
  sim::Tick sum = 0;
  for (const auto& [name, ticks] : s.stages) sum += ticks;
  EXPECT_EQ(sum, s.total);  // the telescoping invariant, exactly
}

TEST(TailProfiler, ChargeAmortizesWithoutBreakingTheTelescope) {
  // charge() bills a fixed share (the chain-amortization hook) and advances
  // the mark by the same amount, so the residual stage picks up the rest.
  TailProfiler tp;
  tp.enable();
  tp.begin(9, 0);
  tp.charge(9, "doorbell", sim::us(2));
  tp.finish(9, "ok", sim::us(10), "net_rtt");
  const TailProfiler::Sample& s = tp.samples()[0];
  ASSERT_EQ(s.stages.size(), 2u);
  EXPECT_EQ(s.stages[0].first, "doorbell");
  EXPECT_EQ(s.stages[0].second, sim::us(2));
  EXPECT_EQ(s.stages[1].first, "net_rtt");
  EXPECT_EQ(s.stages[1].second, sim::us(8));
  EXPECT_EQ(s.total, sim::us(10));
}

TEST(TailProfiler, QuantileCutMergesRepeatedStages) {
  TailProfiler tp;
  tp.enable();
  // One slow request with a stage name charged twice (retry loop shape).
  tp.begin(1, 0);
  tp.stage(1, "backoff_hold", sim::us(3));
  tp.stage(1, "net_out", sim::us(4));
  tp.stage(1, "backoff_hold", sim::us(9));
  tp.finish(1, "ok", sim::us(10), "net_out");
  tp.begin(2, 0);
  tp.finish(2, "ok", sim::us(1), "net_out");

  TailProfiler::QuantileCut cut = tp.quantile("ok", 0.99);
  ASSERT_TRUE(cut.valid);
  EXPECT_EQ(cut.trace_id, 1u);  // p99 of {1us, 10us} is the slow one
  EXPECT_DOUBLE_EQ(cut.total_us, 10.0);
  EXPECT_DOUBLE_EQ(cut.stage_sum_us, cut.total_us);
  double backoff = 0, net = 0;
  for (const auto& [name, us] : cut.stages_us) {
    if (name == "backoff_hold") backoff += us;
    if (name == "net_out") net += us;
  }
  EXPECT_DOUBLE_EQ(backoff, 8.0);  // 3 + 5, merged under one name
  EXPECT_DOUBLE_EQ(net, 2.0);
  EXPECT_FALSE(tp.quantile("deadline", 0.99).valid);
}

TEST(TailProfiler, TailJsonRoundTripsThroughBenchValidator) {
  TailProfiler tp;
  tp.enable();
  tp.begin(5, 0);
  tp.stage(5, "client_post", sim::us(1));
  tp.finish(5, "ok", sim::us(6), "net_out");
  Json tail = tail_json(tp.quantile("ok", 0.99));
  ASSERT_TRUE(tail.is_object());
  EXPECT_DOUBLE_EQ(tail.find("p99_total_us")->as_double(), 6.0);
  EXPECT_DOUBLE_EQ(tail.find("stage_sum_us")->as_double(), 6.0);

  BenchReport rep(BenchSpec{"fig99", "t", {"A"}});
  rep.add_point("A", 1, {{"Mops", 1.0}}, Attribution{}, tail);
  EXPECT_TRUE(validate_bench_json(rep.to_json()).empty());

  EXPECT_TRUE(tail_json(TailProfiler::QuantileCut{}).is_null());
}

TEST(BenchReport, ValidatorRejectsMalformedTail) {
  auto with_tail = [](Json tail) {
    BenchReport rep(BenchSpec{"fig99", "t", {"A"}});
    rep.add_point("A", 1, {{"Mops", 1.0}}, Attribution{}, tail);
    return validate_bench_json(rep.to_json());
  };
  Json missing_sum = Json::object();
  missing_sum["p99_total_us"] = Json(5.0);
  missing_sum["stages"] = Json::object();
  missing_sum["stages"]["net_out"] = Json(5.0);
  EXPECT_FALSE(with_tail(std::move(missing_sum)).empty());

  Json empty_stages = Json::object();
  empty_stages["p99_total_us"] = Json(5.0);
  empty_stages["stage_sum_us"] = Json(5.0);
  empty_stages["stages"] = Json::object();
  EXPECT_FALSE(with_tail(std::move(empty_stages)).empty());
}

// ------------------------------------------------- end-to-end determinism

core::TestbedConfig traced_config() {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.window = 4;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 1000;
  cfg.workload.value_len = 32;
  cfg.seed = 42;
  cfg.trace_sample_every = 64;
  return cfg;
}

TEST(ObsDeterminism, IdenticalSeedsIdenticalSnapshotsAndTraces) {
  auto run = [] {
    core::HerdTestbed bed(traced_config());
    bed.run(sim::us(200), sim::us(800));
    return std::pair{bed.snapshot(), bed.trace_json()};
  };
  auto [snap1, trace1] = run();
  auto [snap2, trace2] = run();
  EXPECT_EQ(snap1, snap2);
  EXPECT_EQ(trace1, trace2);  // byte-identical Chrome export
  EXPECT_GT(snap1.counters().size(), 50u);
  EXPECT_GT(trace1.size(), 2u);
}

TEST(ObsDeterminism, TracedRequestSpansAppearInSimTimeOrder) {
  core::HerdTestbed bed(traced_config());
  bed.run(sim::us(200), sim::us(800));
  const auto& events = bed.tracer().events();
  ASSERT_FALSE(events.empty());

  // Sampling windows record every event while open, so spans of concurrent
  // requests interleave. The lifecycle ordering we assert is causal, so we
  // follow one chain: the first sampled client post, then the first instance
  // of each later stage at or after the previous stage's start.
  auto first_after = [&](sim::Tick t, auto pred) {
    sim::Tick best = 0;
    bool found = false;
    for (const auto& e : events) {
      if (e.start < t || !pred(e)) continue;
      if (!found || e.start < best) best = e.start;
      found = true;
    }
    EXPECT_TRUE(found);
    return best;
  };
  auto named = [](const std::string& prefix) {
    return [prefix](const Tracer::Event& e) {
      return e.name.compare(0, prefix.size(), prefix) == 0;
    };
  };

  sim::Tick client_post = first_after(0, named("client_post"));
  sim::Tick rnic_rx = first_after(client_post, named("rx_"));
  sim::Tick dispatch = first_after(client_post, named("dispatch"));
  sim::Tick mica = first_after(rnic_rx, named("mica_op"));
  sim::Tick rnic_tx = first_after(mica, named("tx_"));
  sim::Tick dma = first_after(client_post, named("dma_"));

  // client post -> RNIC RX (+ dispatch) -> MICA op -> response TX, with the
  // PCIe DMA activity in between: each later stage exists and starts strictly
  // after the client's post, and the chain is monotone in simulated time.
  EXPECT_LT(client_post, rnic_rx);
  EXPECT_LT(client_post, dispatch);
  EXPECT_LT(rnic_rx, mica);
  EXPECT_LE(mica, rnic_tx);
  EXPECT_LT(client_post, dma);
  EXPECT_LT(rnic_tx, client_post + sim::us(100));  // same neighborhood
}

// ------------------------------------- causal propagation across the wire

core::TestbedConfig wire_traced_config() {
  core::TestbedConfig cfg = traced_config();
  cfg.herd.request_tokens = true;  // trace header requires tokened requests
  cfg.herd.trace = true;
  return cfg;
}

TEST(TraceE2E, ExportValidatesAndKeepsOneTraceIdAcrossClientAndServer) {
  core::HerdTestbed bed(wire_traced_config());
  bed.run(sim::us(200), sim::us(800));
  EXPECT_EQ(bed.tracer().open_spans(), 0u);  // every begin reached its end

  Json doc = Json::parse(bed.trace_json());
  EXPECT_TRUE(validate_trace_json(doc).empty());

  // Resolve tid -> track names, then group traced events by trace id. A
  // sampled request must keep ONE id across the client track and the
  // server-side stages (net_in/drr_wait/mica_op/... live on proc tracks).
  std::map<double, std::string> tracks;
  std::map<std::string, std::set<std::string>> tracks_of;  // trace -> tracks
  for (const Json& e : doc.find("traceEvents")->elements()) {
    const Json* ph = e.find("ph");
    if (ph == nullptr) continue;
    if (ph->as_string() == "M") {
      const Json* name = e.find("name");
      if (name != nullptr && name->as_string() == "thread_name") {
        tracks[e.find("tid")->as_double()] =
            e.find("args")->find("name")->as_string();
      }
      continue;
    }
    const Json* args = e.find("args");
    const Json* trace = args == nullptr ? nullptr : args->find("trace");
    if (trace == nullptr || trace->as_string() == "0x0") continue;
    tracks_of[trace->as_string()].insert(
        tracks[e.find("tid")->as_double()]);
  }
  ASSERT_FALSE(tracks_of.empty());
  // Tracks are "<fabric>/<host>/<unit>"; a sampled id must show up on both
  // a client unit and a server proc unit.
  bool crossed = false;
  for (const auto& [id, tr] : tracks_of) {
    bool client = false, server = false;
    for (const std::string& t : tr) {
      if (t.find("/client") != std::string::npos) client = true;
      if (t.find("/proc") != std::string::npos) server = true;
    }
    crossed = crossed || (client && server);
  }
  EXPECT_TRUE(crossed);
}

TEST(TraceE2E, TailStagesSumExactlyToEndToEndLatency) {
  core::HerdTestbed bed(wire_traced_config());
  bed.run(sim::us(200), sim::us(800));
  ASSERT_GT(bed.tail().count("ok"), 0u);
  EXPECT_EQ(bed.tail().in_flight(), 0u);
  // Telescoping is exact on ticks; the bench gate allows 1% only for the
  // tick->us rounding of the emitted JSON.
  for (const TailProfiler::Sample& s : bed.tail().samples()) {
    sim::Tick sum = 0;
    for (const auto& [name, ticks] : s.stages) sum += ticks;
    EXPECT_EQ(sum, s.total) << "sample 0x" << std::hex << s.trace_id;
  }
  TailProfiler::QuantileCut cut = bed.tail().quantile("ok", 0.99);
  ASSERT_TRUE(cut.valid);
  EXPECT_NEAR(cut.stage_sum_us, cut.total_us, 0.01 * cut.total_us);
  // Both sides of the wire contributed stages.
  bool server_side = false;
  for (const auto& [name, us] : cut.stages_us) {
    if (name == "mica_op" || name == "net_in") server_side = true;
  }
  EXPECT_TRUE(server_side);
}

// ------------------------------------------------------------ bench schema

BenchReport sample_report() {
  BenchReport rep(BenchSpec{"fig99", "Test figure", {"WRITE_UC", "READ_RC"}});
  rep.set_config("payload", Json{std::uint64_t{32}});
  rep.add_point("WRITE_UC", 32, {{"Mops", 34.9}});
  rep.add_point("READ_RC", 32, {{"Mops", 26.0}, {"avg_us", 5.0}});
  Snapshot s;
  s.set_counter("rnic.rx_ops", 123);
  rep.set_snapshot(s);
  rep.set_git_rev("deadbeef");
  return rep;
}

TEST(BenchReport, UndeclaredSeriesThrows) {
  BenchReport rep(BenchSpec{"fig99", "t", {"A"}});
  EXPECT_THROW(rep.add_point("B", 1, {{"Mops", 1.0}}), std::logic_error);
}

TEST(BenchReport, ValidatorAcceptsWhatReportWrites) {
  Json doc = Json::parse(sample_report().to_json().dump());
  EXPECT_TRUE(validate_bench_json(doc).empty());
}

TEST(BenchReport, ValidatorRejectsSchemaDrift) {
  auto mutate = [](auto fn) {
    Json doc = sample_report().to_json();
    fn(doc);
    return validate_bench_json(doc);
  };
  EXPECT_FALSE(mutate([](Json& d) { d["schema"] = "herd-bench/0"; }).empty());
  EXPECT_FALSE(mutate([](Json& d) { d["figure"] = Json(); }).empty());
  EXPECT_FALSE(mutate([](Json& d) { d["series"] = Json(); }).empty());
  EXPECT_FALSE(mutate([](Json& d) {
                 Json bad = Json::object();
                 bad["name"] = "X";  // no "points"
                 d["series"].push_back(std::move(bad));
               }).empty());
  EXPECT_FALSE(validate_bench_json(Json::parse("{}")).empty());
  EXPECT_FALSE(validate_bench_json(Json::parse("[1,2]")).empty());
}

}  // namespace
}  // namespace herd::obs
