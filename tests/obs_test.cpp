// herd::obs — registry, snapshot, tracer, and bench-report schema tests.
//
// Covers the observability contract the rest of the repo leans on:
//   - MetricRegistry registration is strict (duplicate / malformed names
//     throw) and snapshots are deterministic;
//   - two identically-seeded testbed runs produce identical snapshots and
//     byte-identical Chrome trace exports;
//   - a traced request's spans appear in simulated-time order (client post,
//     RNIC RX/dispatch/TX, PCIe DMA, MICA op);
//   - Snapshot round-trips through JSON;
//   - validate_bench_json accepts what BenchReport writes and rejects
//     documents that drift from the herd-bench/1 schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "herd/testbed.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace herd::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricRegistry, LinksAndSnapshotsTypedHandles) {
  MetricRegistry reg;
  Counter c;
  Gauge g;
  reg.link("rnic.host0.rx_ops", &c);
  reg.link("herd.utilization", &g);
  c.inc(41);
  ++c;
  g.set(0.75);

  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.value("rnic.host0.rx_ops"), 42u);
  EXPECT_DOUBLE_EQ(s.gauge("herd.utilization"), 0.75);
  EXPECT_TRUE(s.has("rnic.host0.rx_ops"));
  EXPECT_FALSE(s.has("rnic.host1.rx_ops"));
  EXPECT_EQ(s.value("rnic.host1.rx_ops"), 0u);  // absent reads as zero
}

TEST(MetricRegistry, DuplicateNameThrows) {
  MetricRegistry reg;
  Counter a, b;
  reg.link("fabric.loss", &a);
  EXPECT_THROW(reg.link("fabric.loss", &b), std::logic_error);
  // The kind does not matter: a gauge cannot squat on a counter name either.
  Gauge g;
  EXPECT_THROW(reg.link("fabric.loss", &g), std::logic_error);
}

TEST(MetricRegistry, MalformedNameThrows) {
  MetricRegistry reg;
  Counter c;
  EXPECT_THROW(reg.link("", &c), std::logic_error);
  EXPECT_THROW(reg.link("has space", &c), std::logic_error);
  EXPECT_THROW(reg.link("emoji.\xf0\x9f\x90\x9b", &c), std::logic_error);
}

TEST(MetricRegistry, CallbackMetricsEvaluateAtSnapshotTime) {
  MetricRegistry reg;
  std::uint64_t backing = 1;
  reg.counter_fn("derived.total", [&] { return backing; });
  backing = 7;  // mutated after registration, before snapshot
  EXPECT_EQ(reg.snapshot().value("derived.total"), 7u);
}

TEST(MetricRegistry, OwnedCounterSurvivesRegistryGrowth) {
  MetricRegistry reg;
  Counter& first = reg.counter("owned.first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("owned.n" + std::to_string(i));
  }
  first.inc(5);  // must not have been invalidated by growth
  EXPECT_EQ(reg.snapshot().value("owned.first"), 5u);
}

// ---------------------------------------------------------------- snapshot

TEST(Snapshot, JsonRoundTripPreservesEverything) {
  Snapshot s;
  s.set_counter("a.b", 3);
  s.set_counter("a.c", 0);
  s.set_gauge("g.x", 1.5);
  HistogramStats h;
  h.count = 10;
  h.min = 100;
  h.max = 9000;
  h.mean_ns = 4.5;
  h.p50_ns = 4.0;
  h.p95_ns = 8.0;
  h.p99_ns = 9.0;
  s.set_histogram("lat.e2e", h);

  Snapshot back = Snapshot::from_json(Json::parse(s.to_json().dump()));
  EXPECT_EQ(back, s);
}

TEST(Snapshot, SerializationIsSorted) {
  // Deterministic exports need a canonical key order regardless of
  // registration order.
  Snapshot s;
  s.set_counter("z.last", 1);
  s.set_counter("a.first", 2);
  std::string text = s.to_json().dump();
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, SamplingOpensEveryNthWindow) {
  Tracer t;
  EXPECT_FALSE(t.sample());  // disabled -> never samples
  t.enable(3);
  int hits = 0;
  for (int i = 0; i < 9; ++i) {
    if (t.sample()) {
      ++hits;
      EXPECT_TRUE(t.active());
      t.release();
    }
  }
  EXPECT_EQ(hits, 3);
  EXPECT_FALSE(t.active());
}

TEST(Tracer, ProducerGateRecordsOnlyInsideWindow) {
  Tracer t;
  t.enable(1);
  EXPECT_FALSE(tracing(&t));  // enabled but no window open
  ASSERT_TRUE(t.sample());
  EXPECT_TRUE(tracing(&t));
  t.span("core", "work", 100, 200);
  t.release();
  EXPECT_FALSE(tracing(&t));
  EXPECT_FALSE(tracing(nullptr));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].name, "work");
}

TEST(Tracer, ChromeJsonIsValidAndDeterministic) {
  auto build = [] {
    Tracer t;
    t.span("client", "request", sim::us(1), sim::us(5));
    t.span("rnic", "rx", sim::us(2), sim::us(3), "bytes=64");
    t.instant("rnic", "qp_cache_miss", sim::us(2));
    return t;
  };
  std::string a = build().chrome_json();
  std::string b = build().chrome_json();
  EXPECT_EQ(a, b);

  Json doc = Json::parse(a);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 3 recorded events + thread_name metadata for the two tracks.
  EXPECT_GE(events->size(), 5u);
}

// ------------------------------------------------- end-to-end determinism

core::TestbedConfig traced_config() {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 4;
  cfg.herd.window = 4;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.workload.n_keys = 1000;
  cfg.workload.value_len = 32;
  cfg.seed = 42;
  cfg.trace_sample_every = 64;
  return cfg;
}

TEST(ObsDeterminism, IdenticalSeedsIdenticalSnapshotsAndTraces) {
  auto run = [] {
    core::HerdTestbed bed(traced_config());
    bed.run(sim::us(200), sim::us(800));
    return std::pair{bed.snapshot(), bed.trace_json()};
  };
  auto [snap1, trace1] = run();
  auto [snap2, trace2] = run();
  EXPECT_EQ(snap1, snap2);
  EXPECT_EQ(trace1, trace2);  // byte-identical Chrome export
  EXPECT_GT(snap1.counters().size(), 50u);
  EXPECT_GT(trace1.size(), 2u);
}

TEST(ObsDeterminism, TracedRequestSpansAppearInSimTimeOrder) {
  core::HerdTestbed bed(traced_config());
  bed.run(sim::us(200), sim::us(800));
  const auto& events = bed.tracer().events();
  ASSERT_FALSE(events.empty());

  // Sampling windows record every event while open, so spans of concurrent
  // requests interleave. The lifecycle ordering we assert is causal, so we
  // follow one chain: the first sampled client post, then the first instance
  // of each later stage at or after the previous stage's start.
  auto first_after = [&](sim::Tick t, auto pred) {
    sim::Tick best = 0;
    bool found = false;
    for (const auto& e : events) {
      if (e.start < t || !pred(e)) continue;
      if (!found || e.start < best) best = e.start;
      found = true;
    }
    EXPECT_TRUE(found);
    return best;
  };
  auto named = [](const std::string& prefix) {
    return [prefix](const Tracer::Event& e) {
      return e.name.compare(0, prefix.size(), prefix) == 0;
    };
  };

  sim::Tick client_post = first_after(0, named("client_post"));
  sim::Tick rnic_rx = first_after(client_post, named("rx_"));
  sim::Tick dispatch = first_after(client_post, named("dispatch"));
  sim::Tick mica = first_after(rnic_rx, named("mica_op"));
  sim::Tick rnic_tx = first_after(mica, named("tx_"));
  sim::Tick dma = first_after(client_post, named("dma_"));

  // client post -> RNIC RX (+ dispatch) -> MICA op -> response TX, with the
  // PCIe DMA activity in between: each later stage exists and starts strictly
  // after the client's post, and the chain is monotone in simulated time.
  EXPECT_LT(client_post, rnic_rx);
  EXPECT_LT(client_post, dispatch);
  EXPECT_LT(rnic_rx, mica);
  EXPECT_LE(mica, rnic_tx);
  EXPECT_LT(client_post, dma);
  EXPECT_LT(rnic_tx, client_post + sim::us(100));  // same neighborhood
}

// ------------------------------------------------------------ bench schema

BenchReport sample_report() {
  BenchReport rep(BenchSpec{"fig99", "Test figure", {"WRITE_UC", "READ_RC"}});
  rep.set_config("payload", Json{std::uint64_t{32}});
  rep.add_point("WRITE_UC", 32, {{"Mops", 34.9}});
  rep.add_point("READ_RC", 32, {{"Mops", 26.0}, {"avg_us", 5.0}});
  Snapshot s;
  s.set_counter("rnic.rx_ops", 123);
  rep.set_snapshot(s);
  rep.set_git_rev("deadbeef");
  return rep;
}

TEST(BenchReport, UndeclaredSeriesThrows) {
  BenchReport rep(BenchSpec{"fig99", "t", {"A"}});
  EXPECT_THROW(rep.add_point("B", 1, {{"Mops", 1.0}}), std::logic_error);
}

TEST(BenchReport, ValidatorAcceptsWhatReportWrites) {
  Json doc = Json::parse(sample_report().to_json().dump());
  EXPECT_TRUE(validate_bench_json(doc).empty());
}

TEST(BenchReport, ValidatorRejectsSchemaDrift) {
  auto mutate = [](auto fn) {
    Json doc = sample_report().to_json();
    fn(doc);
    return validate_bench_json(doc);
  };
  EXPECT_FALSE(mutate([](Json& d) { d["schema"] = "herd-bench/0"; }).empty());
  EXPECT_FALSE(mutate([](Json& d) { d["figure"] = Json(); }).empty());
  EXPECT_FALSE(mutate([](Json& d) { d["series"] = Json(); }).empty());
  EXPECT_FALSE(mutate([](Json& d) {
                 Json bad = Json::object();
                 bad["name"] = "X";  // no "points"
                 d["series"].push_back(std::move(bad));
               }).empty());
  EXPECT_FALSE(validate_bench_json(Json::parse("{}")).empty());
  EXPECT_FALSE(validate_bench_json(Json::parse("[1,2]")).empty());
}

}  // namespace
}  // namespace herd::obs
