// Unit tests: PCIe PIO/DMA model.
#include <gtest/gtest.h>

#include "pcie/pcie.hpp"
#include "sim/engine.hpp"

namespace herd::pcie {
namespace {

TEST(Pcie, CachelineMath) {
  EXPECT_EQ(PcieLink::cachelines(0), 0u);
  EXPECT_EQ(PcieLink::cachelines(1), 1u);
  EXPECT_EQ(PcieLink::cachelines(64), 1u);
  EXPECT_EQ(PcieLink::cachelines(65), 2u);
  EXPECT_EQ(PcieLink::cachelines(128), 2u);
  EXPECT_EQ(PcieLink::cachelines(129), 3u);
}

TEST(Pcie, PioWriteCombiningKnee) {
  // The paper's 28-byte outbound knee: a 36 B WQE header + 28 B payload is
  // one cacheline; 29 B payload is two.
  EXPECT_EQ(PcieLink::cachelines(36 + 28), 1u);
  EXPECT_EQ(PcieLink::cachelines(36 + 29), 2u);
}

TEST(Pcie, PioOccupancyPerCacheline) {
  sim::Engine eng;
  PcieLink link(eng, PcieConfig::gen3_x8(), "p");
  const auto& cfg = link.config();
  sim::Tick t1 = link.pio_write(64);   // 1 CL
  EXPECT_EQ(t1, cfg.pio_per_cacheline + cfg.pio_latency);
  sim::Tick t2 = link.pio_write(128);  // 2 CLs, queued behind the first
  EXPECT_EQ(t2, 3 * cfg.pio_per_cacheline + cfg.pio_latency);
}

TEST(Pcie, DmaWriteFreeBeforeVisible) {
  sim::Engine eng;
  PcieLink link(eng, PcieConfig::gen3_x8(), "p");
  auto r = link.dma_write(0, 64);
  EXPECT_LT(r.free, r.visible);
  EXPECT_EQ(r.visible - r.free, link.config().dma_write_latency);
}

TEST(Pcie, DmaReadIsNonPostedAndSlower) {
  PcieConfig cfg = PcieConfig::gen3_x8();
  EXPECT_GT(cfg.dma_read_latency, cfg.dma_write_latency);
  EXPECT_GT(cfg.dma_read_per_op, cfg.dma_write_per_op);
}

TEST(Pcie, ChainedDmaWritesPipelinePerOccupancy) {
  // Regression test for the serialization bug: chaining a CQE write on the
  // payload write's `.free` must not block the engine for the propagation
  // latency — throughput is set by occupancy alone.
  sim::Engine eng;
  PcieLink link(eng, PcieConfig::gen3_x8(), "p");
  sim::Tick chain = 0;
  for (int i = 0; i < 1000; ++i) {
    auto payload = link.dma_write(chain, 64);
    auto cqe = link.dma_write(payload.free, 32);
    chain = 0;  // next message enters immediately
    (void)cqe;
  }
  // 2000 transactions; per-op occupancy ~ (10 + 64/6.5) + (10 + 32/6.5) ns.
  double per_msg_ns =
      sim::to_ns(link.config().dma_write_per_op) * 2 + (64 + 32) / 6.5;
  double total_ns = sim::to_ns(link.dma_write_resource().next_free());
  EXPECT_NEAR(total_ns, per_msg_ns * 1000, per_msg_ns * 10);
  // Which is far less than 1000 * 300 ns of latency-serialized time.
  EXPECT_LT(total_ns, 1000 * 300.0);
}

TEST(Pcie, Gen2SlowerThanGen3) {
  PcieConfig g3 = PcieConfig::gen3_x8();
  PcieConfig g2 = PcieConfig::gen2_x8();
  EXPECT_GT(g2.pio_per_cacheline, g3.pio_per_cacheline);
  EXPECT_LT(g2.dma_read_gbps, g3.dma_read_gbps);
  EXPECT_GT(g2.dma_read_latency, g3.dma_read_latency);
}

TEST(Pcie, DmaBandwidthShapesLargeTransfers) {
  sim::Engine eng;
  PcieLink link(eng, PcieConfig::gen3_x8(), "p");
  auto small = link.dma_read(0, 64);
  sim::Engine eng2;
  PcieLink link2(eng2, PcieConfig::gen3_x8(), "p");
  auto large = link2.dma_read(0, 4096);
  EXPECT_GT(large.free, small.free);
  // 4 KB at 6.5 GB/s ~ 630 ns of occupancy beyond the fixed cost.
  EXPECT_NEAR(sim::to_ns(large.free - small.free), (4096 - 64) / 6.5, 5.0);
}

}  // namespace
}  // namespace herd::pcie
