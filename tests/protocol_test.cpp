// Unit + property tests: HERD wire protocol and request-region layout
// (Fig. 8, §4.2).
#include <gtest/gtest.h>

#include <vector>

#include "herd/protocol.hpp"
#include "herd/request_region.hpp"
#include "herd/token_ring.hpp"
#include "workload/workload.hpp"

namespace herd::core {
namespace {

TEST(Protocol, GetEncodesEighteenBytes) {
  // "A GET request consists only of a 16-byte keyhash" (+ our LEN=0 marker).
  EXPECT_EQ(request_wire_bytes(0), 18u);
}

TEST(Protocol, EmptySlotDecodesToNothing) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  EXPECT_FALSE(decode_request(slot).has_value());
}

TEST(Protocol, GetRoundTrip) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(3);
  req.is_put = false;
  std::uint32_t start = encode_request(slot, req);
  EXPECT_EQ(start, kSlotBytes - 18);
  auto dec = decode_request(slot);
  ASSERT_TRUE(dec.has_value());
  EXPECT_FALSE(dec->is_put);
  EXPECT_TRUE(dec->key == req.key);
}

class ProtocolValueSizeTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProtocolValueSizeTest, PutRoundTripsEverySize) {
  std::uint32_t len = GetParam();
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  std::vector<std::byte> value(len);
  workload::WorkloadGenerator::fill_value(len, value);
  Request req;
  req.key = kv::hash_of_rank(len);
  req.is_put = true;
  req.value = value;
  std::uint32_t start = encode_request(slot, req);
  EXPECT_EQ(start, kSlotBytes - 18 - len);
  auto dec = decode_request(slot);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->is_put);
  EXPECT_TRUE(dec->key == req.key);
  ASSERT_EQ(dec->value.size(), len);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dec->value.begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProtocolValueSizeTest,
                         ::testing::Values(1, 2, 16, 32, 100, 500, 999,
                                           1000));

TEST(Protocol, KeyhashOccupiesSlotTail) {
  // The keyhash must land in the *rightmost* 16 bytes so left-to-right DMA
  // ordering makes it the last thing visible (§4.2).
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(8);
  encode_request(slot, req);
  kv::KeyHash tail;
  std::memcpy(&tail.hi, slot.data() + kSlotBytes - 16, 8);
  std::memcpy(&tail.lo, slot.data() + kSlotBytes - 8, 8);
  EXPECT_TRUE(tail == req.key);
}

TEST(Protocol, ClearSlotReArms) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(9);
  encode_request(slot, req);
  ASSERT_TRUE(decode_request(slot).has_value());
  clear_slot(slot);
  EXPECT_FALSE(decode_request(slot).has_value());
}

TEST(Protocol, ExactlySizedSendFrameDecodes) {
  // SEND-mode frames are exactly the wire size, not a full slot.
  std::vector<std::byte> value(40);
  workload::WorkloadGenerator::fill_value(1, value);
  std::vector<std::byte> frame(request_wire_bytes(40));
  Request req;
  req.key = kv::hash_of_rank(1);
  req.is_put = true;
  req.value = value;
  EXPECT_EQ(encode_request(frame, req), 0u);
  auto dec = decode_request(frame);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->value.size(), 40u);
}

TEST(Protocol, CorruptLenRejected) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(2);
  encode_request(slot, req);
  // Overwrite LEN with something beyond kMaxValue.
  std::uint16_t bad = kMaxValue + 100;
  std::memcpy(slot.data() + kSlotBytes - kReqTrailer, &bad, 2);
  EXPECT_FALSE(decode_request(slot).has_value());
}

TEST(Protocol, LenLargerThanFrameRejected) {
  std::vector<std::byte> frame(32);  // too small for its declared value
  kv::KeyHash key = kv::hash_of_rank(5);
  std::uint16_t len = 100;
  std::memcpy(frame.data() + 32 - 18, &len, 2);
  std::memcpy(frame.data() + 32 - 16, &key.hi, 8);
  std::memcpy(frame.data() + 32 - 8, &key.lo, 8);
  EXPECT_FALSE(decode_request(frame).has_value());
}

TEST(Protocol, ResponseRoundTrip) {
  std::vector<std::byte> buf(1024);
  std::vector<std::byte> value(64);
  workload::WorkloadGenerator::fill_value(4, value);
  std::uint32_t n = encode_response(buf, RespStatus::kOk, value);
  EXPECT_EQ(n, kRespHeader + 64);
  auto dec = decode_response(std::span<const std::byte>(buf).first(n));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->status, RespStatus::kOk);
  ASSERT_EQ(dec->value.size(), 64u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dec->value.begin()));
}

TEST(Protocol, NotFoundResponse) {
  std::vector<std::byte> buf(16);
  std::uint32_t n = encode_response(buf, RespStatus::kNotFound, {});
  auto dec = decode_response(std::span<const std::byte>(buf).first(n));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->status, RespStatus::kNotFound);
  EXPECT_TRUE(dec->value.empty());
}

TEST(Protocol, TruncatedResponseRejected) {
  std::vector<std::byte> buf(2, std::byte{0});
  EXPECT_FALSE(decode_response(buf).has_value());
}

// ---------------------------------------------------------------------------
// DELETE encoding and the correlation-token extension (resilience mode).

TEST(Protocol, DeleteRoundTrip) {
  // A DELETE is keyhash + the LEN sentinel: same 18 wire bytes as a GET.
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(11);
  req.is_delete = true;
  std::uint32_t start = encode_request(slot, req);
  EXPECT_EQ(start, kSlotBytes - 18);
  auto dec = decode_request(slot);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->is_delete);
  EXPECT_FALSE(dec->is_put);
  EXPECT_TRUE(dec->key == req.key);
  EXPECT_TRUE(dec->value.empty());
}

TEST(Protocol, DeleteRoundTripWithToken) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(12);
  req.is_delete = true;
  req.token = 0xCAFE1234;
  std::uint32_t start = encode_request(slot, req, /*with_token=*/true);
  EXPECT_EQ(start, kSlotBytes - request_wire_bytes(0, true));
  EXPECT_EQ(request_wire_bytes(0, true), 22u);  // GET/DELETE + 4-byte token
  auto dec = decode_request(slot, /*with_token=*/true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->is_delete);
  EXPECT_EQ(dec->token, 0xCAFE1234u);
  EXPECT_TRUE(dec->key == req.key);
}

TEST(Protocol, PutRoundTripWithToken) {
  // The token sits between the value and LEN; it must not shift or corrupt
  // the payload.
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  std::vector<std::byte> value(100);
  workload::WorkloadGenerator::fill_value(7, value);
  Request req;
  req.key = kv::hash_of_rank(7);
  req.is_put = true;
  req.token = 42;
  req.value = value;
  encode_request(slot, req, /*with_token=*/true);
  auto dec = decode_request(slot, /*with_token=*/true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->is_put);
  EXPECT_EQ(dec->token, 42u);
  ASSERT_EQ(dec->value.size(), 100u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dec->value.begin()));
}

TEST(Protocol, TokenModeMismatchDetectable) {
  // Decoding a token-mode DELETE as token-less must not read the token as a
  // LEN: the sentinel sits in the LEN field either way.
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(13);
  req.is_delete = true;
  req.token = 99;
  encode_request(slot, req, /*with_token=*/true);
  auto dec = decode_request(slot, /*with_token=*/false);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->is_delete);  // sentinel survives; token simply not read
  EXPECT_EQ(dec->token, 0u);
}

TEST(Protocol, TruncatedTokenModeDeleteRejected) {
  // A token-less-sized DELETE frame (18 B) decoded in token mode is shorter
  // than the 22-byte trailer; the size guard must fire before the DELETE
  // sentinel early-return can read a token out of bounds.
  std::vector<std::byte> frame(18, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(14);
  req.is_delete = true;
  encode_request(frame, req, /*with_token=*/false);
  EXPECT_FALSE(decode_request(frame, /*with_token=*/true).has_value());
}

TEST(Protocol, ResponseRoundTripWithToken) {
  std::vector<std::byte> buf(1024);
  std::vector<std::byte> value(32);
  workload::WorkloadGenerator::fill_value(6, value);
  std::uint32_t n =
      encode_response(buf, RespStatus::kOk, value, /*with_token=*/true,
                      /*token=*/0xBEEF);
  EXPECT_EQ(n, kRespHeader + kTokenBytes + 32);
  auto dec = decode_response(std::span<const std::byte>(buf).first(n),
                             /*with_token=*/true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->status, RespStatus::kOk);
  EXPECT_EQ(dec->token, 0xBEEFu);
  ASSERT_EQ(dec->value.size(), 32u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dec->value.begin()));
}

TEST(Protocol, DeletedAckResponseWithTokenHasNoValue) {
  std::vector<std::byte> buf(64);
  std::uint32_t n = encode_response(buf, RespStatus::kNotFound, {},
                                    /*with_token=*/true, /*token=*/7);
  EXPECT_EQ(n, kRespHeader + kTokenBytes);
  auto dec = decode_response(std::span<const std::byte>(buf).first(n),
                             /*with_token=*/true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->status, RespStatus::kNotFound);
  EXPECT_EQ(dec->token, 7u);
  EXPECT_TRUE(dec->value.empty());
}

// ---------------------------------------------------------------------------
// Request region layout (Fig. 8).

TEST(Protocol, TraceHeaderRoundTripsWithAllOtherHeaders) {
  // Trace mode rides along with token + epoch + overload headers: the 12-byte
  // trace header sits closest to the value, so every other header decodes at
  // its usual offset whether or not tracing is on.
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  std::vector<std::byte> value(64);
  workload::WorkloadGenerator::fill_value(64, value);
  Request req;
  req.key = kv::hash_of_rank(11);
  req.is_put = true;
  req.value = value;
  req.token = 0xfeed;
  req.epoch = 7;
  req.tenant = 3;
  req.deadline = 123456;
  req.trace_id = (std::uint64_t{5} << 32) | 99;  // client 5, seq 99
  req.parent_span = 42;
  std::uint32_t start = encode_request(slot, req, /*with_token=*/true,
                                       /*with_epoch=*/true,
                                       /*with_overload=*/true,
                                       /*with_trace=*/true);
  EXPECT_EQ(start,
            kSlotBytes - request_wire_bytes(64, true, true, true, true));
  auto dec = decode_request(slot, true, true, true, true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->trace_id, req.trace_id);
  EXPECT_EQ(dec->parent_span, 42u);
  EXPECT_EQ(dec->token, 0xfeedu);
  EXPECT_EQ(dec->epoch, 7u);
  EXPECT_EQ(dec->tenant, 3u);
  EXPECT_EQ(dec->deadline, 123456u);
  ASSERT_EQ(dec->value.size(), 64u);
}

TEST(Protocol, UnsampledTraceRequestCarriesZeroId) {
  std::vector<std::byte> slot(kSlotBytes, std::byte{0});
  Request req;
  req.key = kv::hash_of_rank(4);
  encode_request(slot, req, true, false, false, /*with_trace=*/true);
  auto dec = decode_request(slot, true, false, false, true);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->trace_id, 0u);
  EXPECT_EQ(dec->parent_span, 0u);
}

TEST(Protocol, TraceHeaderShrinksMaxValueByTwelveBytes) {
  EXPECT_EQ(request_wire_bytes(0, true, true, false, true) -
                request_wire_bytes(0, true, true, false, false),
            kTraceBytes);
  std::uint32_t without = max_value_bytes(true, true, true, false);
  std::uint32_t with = max_value_bytes(true, true, true, true);
  EXPECT_EQ(without - with, kTraceBytes);
}

TEST(RequestRegion, PaperSizingExample) {
  // "With NC = 200, NS = 16 and W = 2, this is approximately 6 MB."
  RequestRegion r(0, 16, 200, 2);
  EXPECT_EQ(r.size_bytes(), 16ull * 200 * 2 * 1024);
  EXPECT_NEAR(static_cast<double>(r.size_bytes()) / (1 << 20), 6.25, 0.01);
}

TEST(RequestRegion, SlotFormulaMatchesPaper) {
  // "it polls the request region at the request slot number
  //  s*(W*Nc) + (c*W) + r mod W"
  RequestRegion r(0, 4, 10, 8);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t c = 0; c < 10; ++c) {
      for (std::uint64_t req = 0; req < 20; ++req) {
        EXPECT_EQ(r.slot_index(s, c, req),
                  std::uint64_t{s} * (8 * 10) + c * 8 + (req % 8));
      }
    }
  }
}

TEST(RequestRegion, SlotsAreDisjointAcrossClientsAndProcs) {
  RequestRegion r(4096, 3, 7, 4);
  std::set<std::uint64_t> addrs;
  for (std::uint32_t s = 0; s < 3; ++s) {
    for (std::uint32_t c = 0; c < 7; ++c) {
      for (std::uint64_t w = 0; w < 4; ++w) {
        auto a = r.slot_addr(s, c, w);
        EXPECT_TRUE(addrs.insert(a).second) << "duplicate slot";
        EXPECT_GE(a, r.base());
        EXPECT_LT(a, r.base() + r.size_bytes());
        EXPECT_EQ((a - r.base()) % kSlotBytes, 0u);
      }
    }
  }
  EXPECT_EQ(addrs.size(), 3u * 7 * 4);
}

TEST(RequestRegion, LocateInvertsSlotAddr) {
  RequestRegion r(10240, 5, 9, 3);
  for (std::uint32_t s = 0; s < 5; ++s) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      for (std::uint64_t w = 0; w < 3; ++w) {
        auto id = r.locate(s, r.slot_addr(s, c, w));
        EXPECT_EQ(id.client, c);
        EXPECT_EQ(id.wslot, w % 3);
      }
    }
  }
}

TEST(RequestRegion, ChunksTileTheRegion) {
  RequestRegion r(0, 4, 6, 2);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(r.chunk_addr(s), s * r.chunk_bytes());
  }
  EXPECT_EQ(r.chunk_bytes() * 4, r.size_bytes());
}

// --- TokenRing: the duplicate-mutation response cache --------------------

TEST(TokenRing, ReplaysRecordedResult) {
  TokenRing ring(sim::ms(10));
  ring.insert(5, static_cast<std::uint8_t>(RespStatus::kNotFound), sim::us(1));
  ring.insert(6, static_cast<std::uint8_t>(RespStatus::kOk), sim::us(2));
  auto r5 = ring.find(5);
  ASSERT_TRUE(r5.has_value());
  EXPECT_EQ(*r5, static_cast<std::uint8_t>(RespStatus::kNotFound));
  auto r6 = ring.find(6);
  ASSERT_TRUE(r6.has_value());
  EXPECT_EQ(*r6, static_cast<std::uint8_t>(RespStatus::kOk));
  EXPECT_FALSE(ring.find(7).has_value());
}

TEST(TokenRing, RetainsEntriesForTheConfiguredHorizon) {
  TokenRing ring(sim::us(100));
  ring.insert(1, 0, sim::us(0));
  ring.insert(2, 0, sim::us(90));
  // Within the horizon nothing is pruned, no matter how many land.
  EXPECT_TRUE(ring.find(1).has_value());
  // An insert past entry 1's horizon prunes it but keeps entry 2.
  ring.insert(3, 0, sim::us(150));
  EXPECT_FALSE(ring.find(1).has_value());
  EXPECT_TRUE(ring.find(2).has_value());
  EXPECT_EQ(ring.size(), 2u);
}

TEST(TokenRing, ProvablyNewTracksTheNewestSequence) {
  TokenRing ring(sim::ms(10));
  EXPECT_TRUE(ring.provably_new(0));  // empty cache: anything is new
  ring.insert(10, 0, 0);
  EXPECT_TRUE(ring.provably_new(11));
  EXPECT_FALSE(ring.provably_new(10));
  EXPECT_FALSE(ring.provably_new(9));
}

TEST(TokenRing, WrapOldEntryDoesNotShadowNewToken) {
  // A client's 64-bit sequence crosses 2^32, so the 4-byte wire token
  // wraps. A mutation cached at sequence 5 must NOT suppress the brand-new
  // mutation at sequence 2^32 + 5, which carries the identical wire token.
  TokenRing ring(sim::ms(100));
  ring.insert(5, static_cast<std::uint8_t>(RespStatus::kOk), sim::us(1));
  ring.insert(0xFFFFFFF0u, 0, sim::us(2));  // sequence advances near the wrap
  // Post-wrap, token 5 means sequence 0x1'0000'0005 — a different identity.
  EXPECT_FALSE(ring.find(5).has_value());
  EXPECT_FALSE(ring.seen_or_insert(5, sim::us(3)));  // applies as new
  EXPECT_TRUE(ring.seen_or_insert(5, sim::us(4)));   // its retry dedups
}

TEST(TokenRing, WrapRetryStillDedupsAcrossTheBoundary) {
  // The converse: a mutation applied just before the wrap is retried just
  // after other mutations crossed it. Serial-number expansion must still
  // match the pre-wrap entry.
  TokenRing ring(sim::ms(100));
  ring.insert(0xFFFFFFFEu, static_cast<std::uint8_t>(RespStatus::kNotFound),
              sim::us(1));
  ring.insert(1, 0, sim::us(2));  // sequence 2^32 + 1: newest crosses the wrap
  ring.insert(3, 0, sim::us(3));
  auto replay = ring.find(0xFFFFFFFEu);  // late retry from before the wrap
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(*replay, static_cast<std::uint8_t>(RespStatus::kNotFound));
  // And post-wrap tokens are strictly newer than every pre-wrap entry.
  EXPECT_TRUE(ring.provably_new(4));
  EXPECT_FALSE(ring.provably_new(0xFFFFFFFEu));
}

TEST(TokenRing, ExpandIsPureAndAnchoredAtNewest) {
  TokenRing ring(sim::ms(10));
  EXPECT_EQ(ring.expand(7), 7u);  // empty: identity
  ring.insert(0xFFFFFFF0u, 0, 0);
  EXPECT_EQ(ring.expand(2), 0x100000002ULL);   // ahead of newest, post-wrap
  EXPECT_EQ(ring.expand(0xFFFFFF00u), 0xFFFFFF00ULL);  // behind newest
  // expand() never moves the anchor: repeated queries agree.
  EXPECT_EQ(ring.expand(2), 0x100000002ULL);
  // Early in a client's life negative deltas would underflow below zero;
  // expansion falls back to the raw token (sequences start near zero).
  TokenRing young(sim::ms(10));
  young.insert(10, 0, 0);
  EXPECT_EQ(young.expand(0xFFFFFFF0u), 0xFFFFFFF0ULL);
}

}  // namespace
}  // namespace herd::core
