// Unit tests: RNIC QP-context cache model.
#include <gtest/gtest.h>

#include "rnic/qp_cache.hpp"
#include "sim/engine.hpp"

namespace herd::rnic {
namespace {

QpContextCache::Config small_cfg() {
  QpContextCache::Config cfg;
  cfg.capacity_units = 10;
  cfg.residency = sim::ns(500);
  cfg.idle_expiry = sim::us(100);
  return cfg;
}

TEST(QpCache, AlwaysHitsUnderCapacity) {
  sim::Engine eng;
  QpContextCache cache(eng, small_cfg(), 1);
  for (int round = 0; round < 100; ++round) {
    for (std::uint64_t k = 0; k < 10; ++k) {
      EXPECT_TRUE(cache.touch(k, 1));
    }
    eng.run_until(eng.now() + sim::us(1));
  }
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_DOUBLE_EQ(cache.working_set(), 10.0);
}

TEST(QpCache, MissesOverCapacity) {
  sim::Engine eng;
  QpContextCache cache(eng, small_cfg(), 1);
  // Working set 40 units against capacity 10: ~75% misses expected.
  std::uint64_t misses = 0;
  for (int round = 0; round < 500; ++round) {
    for (std::uint64_t k = 0; k < 40; ++k) {
      cache.touch(k, 1);
      eng.run_until(eng.now() + sim::us(1));  // outlive residency
    }
  }
  misses = cache.misses();
  double rate = static_cast<double>(misses) /
                static_cast<double>(cache.hits() + cache.misses());
  EXPECT_NEAR(rate, 0.75, 0.05);
}

TEST(QpCache, WeightsCountTowardWorkingSet) {
  sim::Engine eng;
  QpContextCache cache(eng, small_cfg(), 1);
  cache.touch(1, 4);
  cache.touch(2, 4);
  EXPECT_DOUBLE_EQ(cache.working_set(), 8.0);
  cache.touch(3, 4);  // 12 > 10: over capacity now
  EXPECT_GT(cache.working_set(), 10.0);
}

TEST(QpCache, FractionalWeights) {
  sim::Engine eng;
  QpContextCache cache(eng, small_cfg(), 1);
  for (std::uint64_t k = 0; k < 50; ++k) cache.touch(k, 0.1);
  EXPECT_NEAR(cache.working_set(), 5.0, 1e-9);
  EXPECT_EQ(cache.misses(), 0u);  // 5 units fits capacity 10
}

TEST(QpCache, ResidencyMakesBurstsCheap) {
  // Back-to-back touches of the same context within the residency window hit
  // even when the total working set thrashes — the Fig. 12 window-size
  // amortization.
  sim::Engine eng;
  QpContextCache cache(eng, small_cfg(), 1);
  // Build a large working set.
  for (std::uint64_t k = 0; k < 100; ++k) {
    cache.touch(k, 1);
    eng.run_until(eng.now() + sim::us(1));
  }
  cache.reset_stats();
  // A burst of 4 touches within residency: at most the first can miss.
  cache.touch(7, 1);
  std::uint64_t after_first = cache.misses();
  for (int i = 0; i < 3; ++i) {
    eng.run_until(eng.now() + sim::ns(50));
    EXPECT_TRUE(cache.touch(7, 1));
  }
  EXPECT_EQ(cache.misses(), after_first);
}

TEST(QpCache, IdleEntriesExpireFromWorkingSet) {
  sim::Engine eng;
  QpContextCache::Config cfg = small_cfg();
  cfg.idle_expiry = sim::us(10);
  QpContextCache cache(eng, cfg, 1);
  for (std::uint64_t k = 0; k < 8; ++k) cache.touch(k, 1);
  EXPECT_DOUBLE_EQ(cache.working_set(), 8.0);
  // Go idle long past the expiry, then touch enough to trigger a sweep.
  eng.run_until(eng.now() + sim::ms(1));
  for (int i = 0; i < 5000; ++i) cache.touch(999, 1);
  EXPECT_LT(cache.working_set(), 8.0);
}

TEST(QpCache, DeterministicPerSeed) {
  sim::Engine eng1, eng2;
  QpContextCache a(eng1, small_cfg(), 77);
  QpContextCache b(eng2, small_cfg(), 77);
  for (int round = 0; round < 200; ++round) {
    for (std::uint64_t k = 0; k < 30; ++k) {
      eng1.run_until(eng1.now() + sim::us(1));
      eng2.run_until(eng2.now() + sim::us(1));
      EXPECT_EQ(a.touch(k, 1), b.touch(k, 1));
    }
  }
}

}  // namespace
}  // namespace herd::rnic
