// Primary-backup replication end to end: acknowledged-write forwarding,
// failover across a promotion, re-replication after recovery, and live
// shard migration (herd/shard.hpp + the replicate paths in service/client).
#include <gtest/gtest.h>

#include "herd/testbed.hpp"

namespace herd {
namespace {

using core::kNoBackup;

// Two server processes, replication on, sized like the fault tests: load
// well below one process's capacity so failover comparisons measure the
// protocol, not saturation.
core::TestbedConfig replicated_cfg() {
  core::TestbedConfig cfg;
  cfg.herd.n_server_procs = 2;
  cfg.herd.n_clients = 2;
  cfg.herd.window = 1;
  cfg.herd.mica.bucket_count_log2 = 12;
  cfg.herd.mica.log_bytes = 4u << 20;
  cfg.herd.request_tokens = true;
  cfg.herd.replicate = true;
  cfg.workload.n_keys = 500;
  cfg.workload.get_fraction = 0.50;  // heavy PUTs stress the forwarding path
  cfg.verify_values = true;
  cfg.resilience.retry_timeout = sim::us(30);
  cfg.resilience.backoff_multiplier = 2.0;
  cfg.resilience.backoff_max = sim::us(120);
  cfg.resilience.jitter = 0.2;
  cfg.resilience.deadline = sim::ms(1);
  cfg.resilience.failover_threshold = 3;
  cfg.resilience.probe_interval = sim::ms(1);
  return cfg;
}

TEST(Replication, SteadyStateForwardsAndAcksEveryMutation) {
  auto cfg = replicated_cfg();
  core::HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 300u);
  EXPECT_EQ(r.value_mismatches, 0u);
  EXPECT_EQ(r.get_misses, 0u);

  obs::Snapshot rep = bed.snapshot();
  // Every acked mutation went through the backup: forwards == acks up to
  // the handful in flight across the snapshot boundary (response batching
  // holds acks in the proc's WR chain until the quantum's flush), and
  // nothing was acked degraded (both processes healthy throughout).
  EXPECT_GT(rep.value("service.repl_forwards"), 0u);
  EXPECT_NEAR(static_cast<double>(rep.value("service.repl_forwards")),
              static_cast<double>(rep.value("service.repl_acks")), 2.0);
  EXPECT_GT(rep.value("service.repl_applies"), 0u);
  EXPECT_EQ(rep.value("service.repl_degraded"), 0u);
  EXPECT_EQ(rep.value("service.repl_dropped"), 0u);
  EXPECT_EQ(bed.contract_violations(), 0u);
}

TEST(Replication, AckedWritesSurviveAPromotion) {
  // Process 0 crashes and never comes back. Its backup (process 1) promotes
  // itself after the failure-detector grace, and every write acked before
  // the crash is still visible — the replicated acknowledged-write
  // guarantee, observed end to end through client verification.
  auto cfg = replicated_cfg();
  cfg.fault_plan.proc_crash.push_back(
      fault::ProcCrashFault{0, sim::ms(4) + sim::us(50), 0});
  core::HerdTestbed bed(cfg);

  auto before = bed.run(sim::ms(1), sim::ms(2));  // [1, 3) ms: healthy
  EXPECT_GT(before.ops, 300u);
  EXPECT_EQ(before.value_mismatches, 0u);

  // Crash at 4.05 ms lands in this measure window [4, 7) ms, promotion
  // ~100 us later; the tail of the window runs on the promoted primary.
  auto during = bed.run(sim::ms(1), sim::ms(3));
  EXPECT_EQ(during.value_mismatches, 0u);
  EXPECT_EQ(during.promotions, 1u);
  EXPECT_GT(during.failovers, 0u);

  const core::ShardInfo& s0 = bed.service().shards().at(0);
  EXPECT_EQ(s0.primary, 1u);
  EXPECT_EQ(s0.backup, kNoBackup);  // redundancy lost with process 0
  EXPECT_EQ(s0.epoch, 1u);

  // Steady state on the survivor: every previously acked PUT visible.
  auto after = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_EQ(after.value_mismatches, 0u);
  EXPECT_EQ(after.get_misses, 0u);
  EXPECT_GE(static_cast<double>(after.ops) / 2.0,
            0.9 * static_cast<double>(before.ops) / 2.0);

  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("service.lost_shards"), 0u);

  for (std::size_t c = 0; c < bed.num_clients(); ++c) bed.client(c).stop();
  bed.cluster().engine().run();
  for (std::size_t c = 0; c < bed.num_clients(); ++c) {
    EXPECT_EQ(bed.client(c).outstanding(), 0u) << "client " << c;
  }
}

TEST(Replication, RecoveredProcessRejoinsAndRedirectsRefreshClientMaps) {
  // Crash at 4.05 ms, recovery at 9 ms. The recovered process comes back
  // empty, re-replicates both shards from the surviving primary, and
  // resumes as backup; probes that reach it for its old shard are bounced
  // with kWrongEpoch redirects that refresh the clients' shard maps.
  auto cfg = replicated_cfg();
  cfg.fault_plan.proc_crash.push_back(
      fault::ProcCrashFault{0, sim::ms(4) + sim::us(50), sim::ms(9)});
  core::HerdTestbed bed(cfg);

  bed.run(sim::ms(1), sim::ms(2));                // [1, 3) ms: healthy
  auto during = bed.run(sim::ms(1), sim::ms(3));  // [4, 7) ms: crash inside
  EXPECT_EQ(during.promotions, 1u);

  // [8, 13) ms: recovery at 9 ms and the rejoin stream both inside.
  auto after = bed.run(sim::ms(1), sim::ms(5));
  EXPECT_EQ(after.value_mismatches, 0u);
  EXPECT_EQ(after.get_misses, 0u);
  EXPECT_GT(after.stale_epoch_retries, 0u);  // probes redirected, not lost

  const core::ShardInfo& s0 = bed.service().shards().at(0);
  EXPECT_EQ(s0.primary, 1u);   // promotion is not undone by recovery
  EXPECT_EQ(s0.backup, 0u);    // redundancy restored by re-replication
  EXPECT_EQ(s0.epoch, 1u);
  const core::ShardInfo& s1 = bed.service().shards().at(1);
  EXPECT_EQ(s1.primary, 1u);   // never moved
  EXPECT_EQ(s1.backup, 0u);    // its backup rejoined too
  EXPECT_EQ(s1.epoch, 0u);

  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("service.rejoins"), 2u);
  EXPECT_EQ(rep.value("service.lost_shards"), 0u);
  EXPECT_GT(rep.value("client.map_refreshes"), 0u);
  EXPECT_EQ(bed.contract_violations(), 0u);
}

TEST(Replication, LiveMigrationHandsOffWithDualWrites) {
  auto cfg = replicated_cfg();
  cfg.herd.n_server_procs = 3;
  cfg.herd.n_clients = 3;
  // A longer stream window so mutation traffic demonstrably overlaps it.
  cfg.herd.migration_stream_time = sim::ms(1);
  core::HerdTestbed bed(cfg);

  auto before = bed.run(sim::ms(1), sim::ms(1));
  EXPECT_GT(before.ops, 100u);

  // Shard 0: primary 0, backup 1. Migrate to process 2.
  EXPECT_FALSE(bed.service().migrate_shard(0, 0));  // already the primary
  EXPECT_FALSE(bed.service().migrate_shard(0, 1));  // already the backup
  ASSERT_TRUE(bed.service().migrate_shard(0, 2));
  EXPECT_TRUE(bed.service().migration_active(0));
  EXPECT_FALSE(bed.service().migrate_shard(0, 2));  // one at a time

  // The 1 ms stream window and the handoff land inside this window.
  auto after = bed.run(0, sim::ms(3));
  EXPECT_FALSE(bed.service().migration_active(0));
  EXPECT_EQ(after.value_mismatches, 0u);
  EXPECT_EQ(after.get_misses, 0u);
  EXPECT_GT(after.stale_epoch_retries, 0u);  // clients chased the handoff

  const core::ShardInfo& s0 = bed.service().shards().at(0);
  EXPECT_EQ(s0.primary, 2u);
  EXPECT_EQ(s0.backup, 0u);  // old primary stays on as backup
  EXPECT_EQ(s0.epoch, 1u);

  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("service.migrations_completed"), 1u);
  EXPECT_EQ(rep.value("service.migrations_aborted"), 0u);
  EXPECT_GT(rep.value("service.migration_dual_writes"), 0u);
  EXPECT_EQ(bed.contract_violations(), 0u);

  // Traffic keeps flowing against the new primary.
  auto steady = bed.run(sim::ms(1), sim::ms(1));
  EXPECT_EQ(steady.value_mismatches, 0u);
  EXPECT_EQ(steady.get_misses, 0u);
}

TEST(Replication, DropReplicationCanarySkipsForwardingButStillAcks) {
  // The planted-bug hook the chaos canary builds on: mutations are acked
  // without ever reaching the backup. Mechanically visible as zero
  // forwards with every ack degraded; the linearizability checker proves
  // the resulting data loss across a promotion (chaos_test).
  auto cfg = replicated_cfg();
  cfg.herd.drop_replication = true;
  core::HerdTestbed bed(cfg);
  auto r = bed.run(sim::ms(1), sim::ms(2));
  EXPECT_GT(r.ops, 300u);

  obs::Snapshot rep = bed.snapshot();
  EXPECT_EQ(rep.value("service.repl_forwards"), 0u);
  EXPECT_EQ(rep.value("service.repl_applies"), 0u);
  EXPECT_GT(rep.value("service.repl_degraded"), 0u);
}

}  // namespace
}  // namespace herd
