// Shard map, epoch-header wire protocol, and config coupling rules
// (herd/shard.hpp, herd/protocol.hpp, HerdConfigBuilder).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "herd/config.hpp"
#include "herd/protocol.hpp"
#include "herd/shard.hpp"
#include "kv/keyhash.hpp"

namespace herd {
namespace {

using core::HerdConfig;
using core::HerdConfigBuilder;
using core::ClientResilience;
using core::kNoBackup;
using core::ShardMap;

TEST(ShardMap, InitialLayoutReplicated) {
  ShardMap m(4, /*replicated=*/true);
  ASSERT_EQ(m.n_shards(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.at(s).primary, s);
    EXPECT_EQ(m.at(s).backup, (s + 1) % 4);
    EXPECT_EQ(m.at(s).epoch, 0u);
  }
}

TEST(ShardMap, UnreplicatedHasNoBackups) {
  ShardMap m(3, /*replicated=*/false);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(m.at(s).primary, s);
    EXPECT_EQ(m.at(s).backup, kNoBackup);
  }
}

TEST(ShardMap, ShardOfMatchesPartitionOf) {
  // Client-side routing and the legacy EREW partitioning must agree, or
  // replication on/off would move keys between processes.
  ShardMap m(6, true);
  for (std::uint64_t rank = 0; rank < 4096; ++rank) {
    kv::KeyHash k = kv::hash_of_rank(rank);
    EXPECT_EQ(m.shard_of(k), kv::partition_of(k, 6));
  }
}

TEST(ShardMap, PromoteMovesPrimaryAndBumpsEpoch) {
  ShardMap m(2, true);
  m.promote(0);
  EXPECT_EQ(m.at(0).primary, 1u);
  EXPECT_EQ(m.at(0).backup, kNoBackup);
  EXPECT_EQ(m.at(0).epoch, 1u);
  // The sibling shard is untouched.
  EXPECT_EQ(m.at(1).primary, 1u);
  EXPECT_EQ(m.at(1).epoch, 0u);
  // No backup left: promoting again is a logic error, not silent data loss.
  EXPECT_THROW(m.promote(0), std::logic_error);
}

TEST(ShardMap, SetBackupDoesNotBumpEpoch) {
  // Backup changes (crash takes one away, rejoin brings one back) don't
  // invalidate client routing — only primary changes do.
  ShardMap m(2, true);
  m.set_backup(0, kNoBackup);
  EXPECT_EQ(m.at(0).epoch, 0u);
  m.set_backup(0, 1);
  EXPECT_EQ(m.at(0).epoch, 0u);
  EXPECT_EQ(m.at(0).backup, 1u);
}

TEST(ShardMap, MigrateHandsOffToDestKeepsOldPrimaryAsBackup) {
  ShardMap m(3, true);
  m.migrate(0, 2);
  EXPECT_EQ(m.at(0).primary, 2u);
  EXPECT_EQ(m.at(0).backup, 0u);  // old primary's replica is complete
  EXPECT_EQ(m.at(0).epoch, 1u);
}

TEST(ShardMap, RefreshAdvancesOnlyOnNewerEpoch) {
  ShardMap m(2, true);
  // Stale or equal epochs are ignored (a delayed redirect must not rewind).
  EXPECT_FALSE(m.refresh(0, 1, 0));
  EXPECT_TRUE(m.refresh(0, 1, 3));
  EXPECT_EQ(m.at(0).primary, 1u);
  EXPECT_EQ(m.at(0).epoch, 3u);
  EXPECT_FALSE(m.refresh(0, 0, 2));
  EXPECT_EQ(m.at(0).primary, 1u);
}

TEST(Protocol, EpochHeaderRoundTrips) {
  std::byte slot[core::kSlotBytes] = {};
  std::byte payload[64];
  for (int i = 0; i < 64; ++i) payload[i] = static_cast<std::byte>(i);
  core::Request req;
  req.key = kv::hash_of_rank(7);
  req.is_put = true;
  req.token = 0xDEADBEEFu;
  req.epoch = 41;
  req.value = payload;
  core::encode_request(slot, req, /*with_token=*/true, /*with_epoch=*/true);
  auto got = core::decode_request(slot, true, true);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->key, req.key);
  EXPECT_TRUE(got->is_put);
  EXPECT_EQ(got->token, req.token);
  EXPECT_EQ(got->epoch, 41u);
  ASSERT_EQ(got->value.size(), 64u);
  EXPECT_TRUE(std::equal(got->value.begin(), got->value.end(), payload));
}

TEST(Protocol, MaxReplicatedValueStillFitsTheSlot) {
  EXPECT_EQ(core::kMaxValueReplicated,
            core::kSlotBytes - core::kReqTrailer - core::kTokenBytes -
                core::kEpochBytes);
  EXPECT_EQ(core::request_wire_bytes(core::kMaxValueReplicated, true, true),
            core::kSlotBytes);
  // The unreplicated maximum would overflow a slot once the epoch header
  // is on the wire — the validation rule this constant exists for.
  EXPECT_GT(core::request_wire_bytes(core::kMaxValue, true, true),
            core::kSlotBytes);
}

TEST(Protocol, RedirectRoundTrips) {
  std::byte buf[core::kRedirectBytes];
  core::encode_redirect(buf, 3, 0x1'0000'0007ull);  // epoch truncates to u32
  auto rd = core::decode_redirect(buf);
  ASSERT_TRUE(rd.has_value());
  EXPECT_EQ(rd->primary, 3u);
  EXPECT_EQ(rd->epoch, 7u);
  EXPECT_FALSE(core::decode_redirect(std::span<const std::byte>(buf, 4)));
}

TEST(ConfigBuilder, ValidSetupBuilds) {
  auto built = HerdConfigBuilder()
                   .server_procs(2)
                   .request_tokens(true)
                   .replicate(true)
                   .retry_timeout(sim::us(30))
                   .deadline(sim::ms(1))
                   .failover_threshold(3)
                   .build();
  EXPECT_TRUE(built.herd.replicate);
  EXPECT_EQ(built.resilience.failover_threshold, 3u);
}

TEST(ConfigBuilder, DeadlinesAndFailoverRequireTokens) {
  auto b = HerdConfigBuilder().server_procs(2).deadline(sim::ms(1));
  EXPECT_FALSE(b.validate().empty());
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ConfigBuilder, FailoverNeedsASecondServerProcess) {
  auto b = HerdConfigBuilder()
               .server_procs(1)
               .request_tokens(true)
               .failover_threshold(3);
  auto problems = b.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("second server process"), std::string::npos);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ConfigBuilder, ReplicationNeedsTokensAndTwoProcs) {
  EXPECT_THROW(
      HerdConfigBuilder().server_procs(2).replicate(true).build(),
      std::invalid_argument);
  EXPECT_THROW(HerdConfigBuilder()
                   .server_procs(1)
                   .request_tokens(true)
                   .replicate(true)
                   .build(),
               std::invalid_argument);
  EXPECT_NO_THROW(HerdConfigBuilder()
                      .server_procs(2)
                      .request_tokens(true)
                      .replicate(true)
                      .build());
}

TEST(ConfigBuilder, DedupRetentionMustOutliveRetryHorizon) {
  auto b = HerdConfigBuilder()
               .server_procs(2)
               .request_tokens(true)
               .retry_timeout(sim::us(30))
               .deadline(sim::ms(10))
               .dedup_retention(sim::ms(1));  // < deadline + backoff_max
  EXPECT_FALSE(b.validate().empty());
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ConfigBuilder, AllProblemsReportedAtOnce) {
  // One build error lists every violated rule, not just the first.
  try {
    HerdConfigBuilder()
        .server_procs(1)
        .replicate(true)
        .failover_threshold(2)
        .build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("failover"), std::string::npos);
    EXPECT_NE(msg.find("replicate"), std::string::npos);
    EXPECT_GT(std::count(msg.begin(), msg.end(), '\n'), 2);
  }
}

}  // namespace
}  // namespace herd
