// Unit tests: latency histogram, throughput meter, RNG, Zipf sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/zipf.hpp"

namespace herd::sim {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.record(ns(42));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 42.0);
  // All quantiles hit the one sample, up to bucket resolution.
  EXPECT_NEAR(h.quantile_ns(0.01), 42.0, 42.0 * 0.04);
  EXPECT_NEAR(h.quantile_ns(0.99), 42.0, 42.0 * 0.04);
  EXPECT_EQ(h.min(), ns(42));
  EXPECT_EQ(h.max(), ns(42));
}

TEST(LatencyHistogram, SmallExactValues) {
  LatencyHistogram h;
  for (Tick t = 0; t < 32; ++t) h.record(t);
  // Values below 2^5 ticks are recorded exactly.
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_NEAR(h.quantile_ns(1.0), 31.0 / 1000.0, 1e-9);
}

TEST(LatencyHistogram, QuantilesOrderedAndBracketed) {
  LatencyHistogram h;
  Pcg32 rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.record(ns(100) + rng.next_below(1000) * ns(10));  // 100ns..10.1us
  }
  double p5 = h.quantile_ns(0.05);
  double p50 = h.quantile_ns(0.50);
  double p95 = h.quantile_ns(0.95);
  double p99 = h.quantile_ns(0.99);
  EXPECT_LE(p5, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p5, 100.0);
  EXPECT_LE(p99, 10100.0 * 1.04);
  // Uniform distribution: median near the middle, p5/p95 near the tails.
  EXPECT_NEAR(p50, 5100.0, 5100.0 * 0.06);
  EXPECT_NEAR(p95, 9600.0, 9600.0 * 0.06);
  // Mean is exact (tracked outside the buckets).
  EXPECT_NEAR(h.mean_ns(), 5095.0, 60.0);
}

TEST(LatencyHistogram, BoundedRelativeErrorAcrossMagnitudes) {
  // Log-linear buckets: relative quantile error stays < ~2^-5 per octave.
  for (double v : {1e2, 1e4, 1e6, 1e8, 1e10}) {
    LatencyHistogram h;
    auto t = static_cast<Tick>(v);
    h.record(t);
    EXPECT_NEAR(h.quantile_ns(0.5), to_ns(t), to_ns(t) * 0.04)
        << "at magnitude " << v;
  }
}

TEST(LatencyHistogram, MergeAccumulates) {
  LatencyHistogram a, b;
  a.record(ns(10));
  b.record(ns(1000));
  b.record(ns(2000));
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), ns(10));
  EXPECT_EQ(a.max(), ns(2000));
  EXPECT_NEAR(a.mean_ns(), (10 + 1000 + 2000) / 3.0, 0.01);
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.record(ns(5));
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(ThroughputMeter, ComputesMops) {
  ThroughputMeter m;
  m.start_window(0);
  m.record(26000);  // 26k ops over 1 ms = 26 Mops
  EXPECT_NEAR(m.mops(ms(1)), 26.0, 1e-9);
  m.start_window(ms(1));
  EXPECT_EQ(m.ops(), 0u);
}

TEST(Pcg32, DeterministicPerSeed) {
  Pcg32 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    std::uint32_t av = a.next_u32();
    EXPECT_EQ(av, b.next_u32());
    (void)c;
  }
  Pcg32 a2(42), c2(43);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a2.next_u32() != c2.next_u32()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Pcg32, NextBelowInRange) {
  Pcg32 rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Pcg32, NextBelowRoughlyUniform) {
  Pcg32 rng(11);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.05);
  }
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, EmpiricalFrequencyMatchesPmf) {
  double theta = GetParam();
  ZipfGenerator z(10000, theta, 123);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[z.next()];
  // Rank 0 is the hottest; its observed share matches pmf(0) within noise.
  double expect0 = z.pmf(0);
  double seen0 = static_cast<double>(counts[0]) / kSamples;
  EXPECT_NEAR(seen0, expect0, expect0 * 0.10) << "theta=" << theta;
  // Monotonic popularity over the head of the distribution.
  EXPECT_GE(counts[0], counts[1]);
  EXPECT_GE(counts[1], counts[4]);
}

TEST_P(ZipfThetaTest, PmfSumsToOne) {
  ZipfGenerator z(5000, GetParam(), 9);
  double sum = 0;
  for (std::uint64_t r = 0; r < 5000; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest,
                         ::testing::Values(0.5, 0.8, 0.9, 0.99));

TEST(Zipf, AllRanksInUniverse) {
  ZipfGenerator z(100, 0.99, 5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(), 100u);
}

TEST(Zipf, PaperSkewHotKeyDominance) {
  // "the most popular key is over 1e5 times more popular than the average"
  // (§5.7) — with the paper's 0.99 exponent over a large universe.
  ZipfGenerator z(1u << 24, 0.99, 1);
  double avg = 1.0 / static_cast<double>(1u << 24);
  EXPECT_GT(z.pmf(0) / avg, 1e5);
}

TEST(Zipf, RejectsInvalidConfig) {
  EXPECT_THROW(ZipfGenerator(0, 0.99, 1), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace herd::sim
