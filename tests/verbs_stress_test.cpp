// Stress / property tests for the verbs layer: many QPs, mixed verbs,
// bidirectional traffic, conservation invariants, determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/rng.hpp"
#include "verbs/verbs.hpp"

namespace herd::verbs {
namespace {

struct Peer {
  std::unique_ptr<Cq> scq, rcq;
  std::unique_ptr<Qp> qp;
  Mr mr{};
};

Peer make_peer(cluster::Host& host, Transport tr) {
  Peer p;
  p.scq = host.ctx().create_cq();
  p.rcq = host.ctx().create_cq();
  p.qp = host.ctx().create_qp({tr, p.scq.get(), p.rcq.get()});
  p.mr = host.ctx().register_mr(
      0, 256 << 10, {.remote_write = true, .remote_read = true});
  return p;
}

TEST(VerbsStress, MixedVerbStormConservesCounts) {
  // Fire thousands of random signaled RC verbs across several QP pairs and
  // check conservation: every signaled verb completes exactly once, with
  // success, and tx/rx counters account for every operation.
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 256 << 10);
  constexpr int kQps = 8;
  std::vector<Peer> left, right;
  for (int i = 0; i < kQps; ++i) {
    left.push_back(make_peer(cl.host(0), Transport::kRc));
    right.push_back(make_peer(cl.host(1), Transport::kRc));
    left[i].qp->connect(*right[i].qp);
    for (int r = 0; r < 512; ++r) {
      right[i].qp->post_recv(
          {.wr_id = 0,
           .sge = {static_cast<std::uint64_t>(r) * 256, 256,
                   right[i].mr.lkey}});
    }
  }
  sim::Pcg32 rng(2024);
  constexpr int kOps = 3000;
  int posted_signaled = 0;
  for (int i = 0; i < kOps; ++i) {
    Peer& p = left[rng.next_below(kQps)];
    SendWr wr;
    switch (rng.next_below(3)) {
      case 0:
        wr.opcode = Opcode::kWrite;
        break;
      case 1:
        wr.opcode = Opcode::kRead;
        break;
      default:
        wr.opcode = Opcode::kSend;
        break;
    }
    std::uint32_t len = 1 + rng.next_below(200);
    wr.sge = {rng.next_below(1024) * 64, len, p.mr.lkey};
    wr.remote_addr = rng.next_below(1024) * 64;
    wr.rkey = right[0].mr.rkey;  // same ctx registry; any right-side rkey
    wr.inline_data = wr.opcode == Opcode::kWrite && len <= 256 &&
                     rng.next_below(2) == 0;
    wr.signaled = true;
    ++posted_signaled;
    p.qp->post_send(wr);
  }
  cl.engine().run();

  int completions = 0;
  Wc wc;
  for (auto& p : left) {
    while (p.scq->poll({&wc, 1}) == 1) {
      EXPECT_EQ(wc.status, WcStatus::kSuccess);
      ++completions;
    }
  }
  EXPECT_EQ(completions, posted_signaled);
  // Every op arrived at the responder exactly once.
  EXPECT_EQ(cl.host(1).rnic().counters().rx_ops,
            static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(cl.host(1).rnic().counters().rnr_drops, 0u);
  EXPECT_EQ(cl.host(1).rnic().counters().access_errors, 0u);
}

TEST(VerbsStress, BidirectionalTrafficDoesNotDeadlock) {
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 256 << 10);
  Peer a = make_peer(cl.host(0), Transport::kRc);
  Peer b = make_peer(cl.host(1), Transport::kRc);
  a.qp->connect(*b.qp);

  // Each side echoes by posting a WRITE back on its own QP upon completion.
  int a_done = 0, b_done = 0;
  constexpr int kRounds = 500;
  a.scq->set_notify([&]() {
    Wc wc;
    while (a.scq->poll({&wc, 1}) == 1) {
      if (++a_done < kRounds) {
        SendWr wr;
        wr.opcode = Opcode::kWrite;
        wr.sge = {0, 64, a.mr.lkey};
        wr.remote_addr = 0;
        wr.rkey = b.mr.rkey;
        a.qp->post_send(wr);
      }
    }
  });
  b.scq->set_notify([&]() {
    Wc wc;
    while (b.scq->poll({&wc, 1}) == 1) {
      if (++b_done < kRounds) {
        SendWr wr;
        wr.opcode = Opcode::kWrite;
        wr.sge = {0, 64, b.mr.lkey};
        wr.remote_addr = 64;
        wr.rkey = a.mr.rkey;
        b.qp->post_send(wr);
      }
    }
  });
  SendWr kick;
  kick.opcode = Opcode::kWrite;
  kick.sge = {0, 64, a.mr.lkey};
  kick.remote_addr = 0;
  kick.rkey = b.mr.rkey;
  a.qp->post_send(kick);
  kick.sge = {0, 64, b.mr.lkey};
  kick.remote_addr = 64;
  kick.rkey = a.mr.rkey;
  b.qp->post_send(kick);
  cl.engine().run();
  EXPECT_EQ(a_done, kRounds);
  EXPECT_EQ(b_done, kRounds);
}

TEST(VerbsStress, SimulationIsDeterministic) {
  // Two identical runs must produce identical op counts and final clocks —
  // the property resumable experiments and regression anchors rely on.
  auto run_once = [](std::uint64_t seed) {
    cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 256 << 10, seed);
    Peer a = make_peer(cl.host(0), Transport::kUc);
    Peer b = make_peer(cl.host(1), Transport::kUc);
    a.qp->connect(*b.qp);
    sim::Pcg32 rng(seed);
    for (int i = 0; i < 2000; ++i) {
      SendWr wr;
      wr.opcode = Opcode::kWrite;
      wr.sge = {rng.next_below(512) * 64, 1 + rng.next_below(128), a.mr.lkey};
      wr.remote_addr = rng.next_below(512) * 64;
      wr.rkey = b.mr.rkey;
      wr.inline_data = true;
      wr.signaled = (i % 8 == 0);
      a.qp->post_send(wr);
    }
    cl.engine().run();
    return std::make_tuple(cl.engine().now(),
                           cl.engine().events_processed(),
                           cl.host(1).rnic().counters().rx_ops);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(std::get<0>(run_once(7)), 0u);
}

TEST(VerbsStress, ManyQpsOnOneContextStayIsolated) {
  // Writes on distinct QPs to distinct regions never interfere.
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 256 << 10);
  constexpr int kQps = 16;
  std::vector<Peer> l, r;
  for (int i = 0; i < kQps; ++i) {
    l.push_back(make_peer(cl.host(0), Transport::kUc));
    r.push_back(make_peer(cl.host(1), Transport::kUc));
    l[i].qp->connect(*r[i].qp);
  }
  for (int i = 0; i < kQps; ++i) {
    auto src = cl.host(0).memory().span(static_cast<std::uint64_t>(i) * 128,
                                        64);
    for (auto& bb : src) bb = static_cast<std::byte>(i + 1);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.sge = {static_cast<std::uint64_t>(i) * 128, 64, l[i].mr.lkey};
    wr.remote_addr = static_cast<std::uint64_t>(i) * 4096;
    wr.rkey = r[i].mr.rkey;
    wr.signaled = false;
    l[i].qp->post_send(wr);
  }
  cl.engine().run();
  for (int i = 0; i < kQps; ++i) {
    auto dst = cl.host(1).memory().span(static_cast<std::uint64_t>(i) * 4096,
                                        64);
    for (auto bb : dst) {
      EXPECT_EQ(bb, static_cast<std::byte>(i + 1)) << "qp " << i;
    }
  }
}

TEST(VerbsStress, ReadsAndWritesInterleaveOnOneQp) {
  // A READ posted after a WRITE to the same location observes the write
  // (per-QP ordering on RC).
  cluster::Cluster cl(cluster::ClusterConfig::apt(), 2, 256 << 10);
  Peer a = make_peer(cl.host(0), Transport::kRc);
  Peer b = make_peer(cl.host(1), Transport::kRc);
  a.qp->connect(*b.qp);
  auto src = cl.host(0).memory().span(0, 64);
  for (auto& bb : src) bb = std::byte{0x5a};

  SendWr w;
  w.opcode = Opcode::kWrite;
  w.sge = {0, 64, a.mr.lkey};
  w.remote_addr = 1024;
  w.rkey = b.mr.rkey;
  w.signaled = false;
  a.qp->post_send(w);

  SendWr rd;
  rd.opcode = Opcode::kRead;
  rd.sge = {8192, 64, a.mr.lkey};
  rd.remote_addr = 1024;
  rd.rkey = b.mr.rkey;
  a.qp->post_send(rd);
  cl.engine().run();
  auto got = cl.host(0).memory().span(8192, 64);
  for (auto bb : got) EXPECT_EQ(bb, std::byte{0x5a});
}

}  // namespace
}  // namespace herd::verbs
