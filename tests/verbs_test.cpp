// Unit + property tests for the verbs layer: transport legality (Table 1),
// data movement correctness, completion semantics, memory protection, RNR
// behavior, READ flow control, inline semantics.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "verbs/verbs.hpp"

namespace herd::verbs {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest() : cl_(cluster::ClusterConfig::apt(), 3, 1u << 20) {}

  struct Endpoint {
    std::unique_ptr<Cq> scq;
    std::unique_ptr<Cq> rcq;
    std::unique_ptr<Qp> qp;
    Mr mr{};
  };

  Endpoint make(std::size_t host, Transport tr, bool remote_access = true) {
    Endpoint e;
    auto& ctx = cl_.host(host).ctx();
    e.scq = ctx.create_cq();
    e.rcq = ctx.create_cq();
    e.qp = ctx.create_qp({tr, e.scq.get(), e.rcq.get()});
    e.mr = ctx.register_mr(
        0, 64 << 10,
        {.remote_write = remote_access, .remote_read = remote_access});
    return e;
  }

  std::span<std::byte> mem(std::size_t host, std::uint64_t addr,
                           std::uint32_t len) {
    return cl_.host(host).memory().span(addr, len);
  }

  void fill(std::size_t host, std::uint64_t addr, std::uint32_t len,
            std::uint8_t seed) {
    auto m = mem(host, addr, len);
    for (std::uint32_t i = 0; i < len; ++i) {
      m[i] = static_cast<std::byte>(seed + i);
    }
  }

  bool matches(std::size_t host, std::uint64_t addr, std::uint32_t len,
               std::uint8_t seed) {
    auto m = mem(host, addr, len);
    for (std::uint32_t i = 0; i < len; ++i) {
      if (m[i] != static_cast<std::byte>(seed + i)) return false;
    }
    return true;
  }

  std::optional<Wc> poll_one(Cq& cq) {
    Wc wc;
    if (cq.poll({&wc, 1}) == 1) return wc;
    return std::nullopt;
  }

  cluster::Cluster cl_;
};

// ---------------------------------------------------------------------------
// Table 1 legality, as a parameterized sweep.

struct LegalityCase {
  Transport tr;
  Opcode op;
  bool legal;
};

class Table1Test : public VerbsTest,
                   public ::testing::WithParamInterface<LegalityCase> {};

TEST_P(Table1Test, EnforcesTable1) {
  auto [tr, op, legal] = GetParam();
  auto a = make(0, tr);
  auto b = make(1, tr);
  if (tr != Transport::kUd) a.qp->connect(*b.qp);
  b.qp->post_recv({.wr_id = 9, .sge = {4096, 8192, b.mr.lkey}});

  SendWr wr;
  wr.opcode = op;
  wr.sge = {0, 32, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  if (tr == Transport::kUd) {
    wr.ah = Ah{&cl_.host(1).ctx(), b.qp->qpn()};
  }
  if (legal) {
    EXPECT_NO_THROW(a.qp->post_send(wr));
    cl_.engine().run();
  } else {
    EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, Table1Test,
    ::testing::Values(
        LegalityCase{Transport::kRc, Opcode::kSend, true},
        LegalityCase{Transport::kRc, Opcode::kWrite, true},
        LegalityCase{Transport::kRc, Opcode::kRead, true},
        LegalityCase{Transport::kUc, Opcode::kSend, true},
        LegalityCase{Transport::kUc, Opcode::kWrite, true},
        LegalityCase{Transport::kUc, Opcode::kRead, false},
        LegalityCase{Transport::kUd, Opcode::kSend, true},
        LegalityCase{Transport::kUd, Opcode::kWrite, false},
        LegalityCase{Transport::kUd, Opcode::kRead, false}));

// ---------------------------------------------------------------------------
// Connection management.

TEST_F(VerbsTest, ConnectRejectsUd) {
  auto a = make(0, Transport::kUd);
  auto b = make(1, Transport::kUd);
  EXPECT_THROW(a.qp->connect(*b.qp), std::logic_error);
}

TEST_F(VerbsTest, ConnectRejectsTransportMismatch) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kUc);
  EXPECT_THROW(a.qp->connect(*b.qp), std::logic_error);
}

TEST_F(VerbsTest, ConnectRejectsDoubleConnect) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  auto c = make(2, Transport::kRc);
  a.qp->connect(*b.qp);
  EXPECT_THROW(a.qp->connect(*c.qp), std::logic_error);
  EXPECT_THROW(c.qp->connect(*b.qp), std::logic_error);
  // Re-connecting the same pair is idempotent.
  EXPECT_NO_THROW(a.qp->connect(*b.qp));
}

TEST_F(VerbsTest, UnconnectedPostSendThrows) {
  auto a = make(0, Transport::kRc);
  SendWr wr;
  wr.sge = {0, 8, a.mr.lkey};
  EXPECT_THROW(a.qp->post_send(wr), std::logic_error);
}

TEST_F(VerbsTest, UdSendWithoutAhThrows) {
  auto a = make(0, Transport::kUd);
  SendWr wr;
  wr.sge = {0, 8, a.mr.lkey};
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
}

TEST_F(VerbsTest, QpRequiresCqs) {
  EXPECT_THROW(cl_.host(0).ctx().create_qp({Transport::kRc, nullptr, nullptr}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Data movement.

TEST_F(VerbsTest, WriteMovesBytes) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  fill(0, 100, 256, 7);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {100, 256, a.mr.lkey};
  wr.remote_addr = 5000;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_TRUE(matches(1, 5000, 256, 7));
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kSuccess);
  EXPECT_EQ(wc->opcode, WcOpcode::kWrite);
}

TEST_F(VerbsTest, ReadFetchesRemoteBytes) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  fill(1, 3000, 512, 42);

  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.wr_id = 77;
  wr.sge = {200, 512, a.mr.lkey};
  wr.remote_addr = 3000;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_TRUE(matches(0, 200, 512, 42));
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->wr_id, 77u);
  EXPECT_EQ(wc->opcode, WcOpcode::kRead);
}

TEST_F(VerbsTest, SendRecvDeliversPayloadAndCompletions) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  fill(0, 0, 128, 9);
  b.qp->post_recv({.wr_id = 55, .sge = {9000, 1024, b.mr.lkey}});

  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.wr_id = 56;
  wr.sge = {0, 128, a.mr.lkey};
  a.qp->post_send(wr);
  cl_.engine().run();

  EXPECT_TRUE(matches(1, 9000, 128, 9));  // no GRH on connected transport
  auto rwc = poll_one(*b.rcq);
  ASSERT_TRUE(rwc.has_value());
  EXPECT_EQ(rwc->wr_id, 55u);
  EXPECT_EQ(rwc->opcode, WcOpcode::kRecv);
  EXPECT_EQ(rwc->byte_len, 128u);
  auto swc = poll_one(*a.scq);
  ASSERT_TRUE(swc.has_value());
  EXPECT_EQ(swc->wr_id, 56u);
}

TEST_F(VerbsTest, UdSendPrependsGrh) {
  auto a = make(0, Transport::kUd);
  auto b = make(1, Transport::kUd);
  fill(0, 0, 64, 3);
  b.qp->post_recv({.wr_id = 1, .sge = {2000, 1024, b.mr.lkey}});

  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {0, 64, a.mr.lkey};
  wr.ah = Ah{&cl_.host(1).ctx(), b.qp->qpn()};
  a.qp->post_send(wr);
  cl_.engine().run();

  auto wc = poll_one(*b.rcq);
  ASSERT_TRUE(wc.has_value());
  // byte_len includes the 40-byte GRH, payload lands at offset 40 (ibverbs
  // UD semantics).
  EXPECT_EQ(wc->byte_len, 64u + kGrhBytes);
  EXPECT_TRUE(matches(1, 2000 + kGrhBytes, 64, 3));
  EXPECT_EQ(wc->src_qp, a.qp->qpn());
  EXPECT_EQ(wc->src_port, cl_.host(0).port());
}

TEST_F(VerbsTest, InlinePayloadCapturedAtPostTime) {
  // The defining inline property: the buffer is reusable immediately after
  // post_send returns. HERD's clients depend on it.
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  fill(0, 0, 64, 10);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 64, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  a.qp->post_send(wr);
  fill(0, 0, 64, 200);  // clobber the source immediately
  cl_.engine().run();
  EXPECT_TRUE(matches(1, 0, 64, 10));  // original bytes arrived
}

TEST_F(VerbsTest, NonInlinePayloadSampledAtDmaTime) {
  // Without inlining the device fetches the buffer later; an immediate
  // overwrite races the DMA and the *new* bytes go out. This mirrors real
  // verbs semantics (the buffer must stay stable until completion).
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  fill(0, 0, 64, 10);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 64, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  wr.inline_data = false;
  a.qp->post_send(wr);
  fill(0, 0, 64, 200);  // clobber before the DMA read fires
  cl_.engine().run();
  EXPECT_TRUE(matches(1, 0, 64, 200));
}

class PayloadSizeTest : public VerbsTest,
                        public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(PayloadSizeTest, WriteRoundTripsAllSizes) {
  std::uint32_t len = GetParam();
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  fill(0, 0, len, 91);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, len, a.mr.lkey};
  wr.remote_addr = 1024;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_TRUE(matches(1, 1024, len, 91));
}

TEST_P(PayloadSizeTest, ReadRoundTripsAllSizes) {
  std::uint32_t len = GetParam();
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  fill(1, 0, len, 17);
  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.sge = {2048, len, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_TRUE(matches(0, 2048, len, 17));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeTest,
                         ::testing::Values(1, 4, 16, 28, 29, 64, 100, 256,
                                           257, 1000, 1024, 4096, 8192));

// ---------------------------------------------------------------------------
// Signaling.

TEST_F(VerbsTest, UnsignaledVerbsProduceNoCqe) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 16, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  wr.signaled = false;
  wr.inline_data = true;
  for (int i = 0; i < 10; ++i) a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_FALSE(poll_one(*a.scq).has_value());
  EXPECT_EQ(cl_.host(1).rnic().counters().rx_ops, 10u);  // they did arrive
}

TEST_F(VerbsTest, SelectiveSignalingDeliversOnlyMarkedCqes) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 16, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  for (int i = 0; i < 16; ++i) {
    wr.wr_id = i;
    wr.signaled = (i % 4 == 3);
    a.qp->post_send(wr);
  }
  cl_.engine().run();
  int cqes = 0;
  while (auto wc = poll_one(*a.scq)) {
    EXPECT_EQ(wc->wr_id % 4, 3u);
    ++cqes;
  }
  EXPECT_EQ(cqes, 4);
}

TEST_F(VerbsTest, CqNotifyFiresOnPush) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  int notified = 0;
  a.scq->set_notify([&] { ++notified; });
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 8, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_EQ(notified, 1);
}

// ---------------------------------------------------------------------------
// Memory protection.

TEST_F(VerbsTest, WriteWithBadRkeyErrorsOnRc) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 8, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = 0xdead;
  a.qp->post_send(wr);
  cl_.engine().run();
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(cl_.host(1).rnic().counters().access_errors, 1u);
}

TEST_F(VerbsTest, WriteWithBadRkeySilentlyDropsOnUc) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 8, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = 0xdead;
  wr.signaled = false;
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_EQ(cl_.host(1).rnic().counters().access_errors, 1u);
  EXPECT_EQ(cl_.host(1).rnic().counters().dropped_packets, 1u);
}

TEST_F(VerbsTest, WriteOutOfBoundsErrors) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 4096, a.mr.lkey};
  wr.remote_addr = (64 << 10) - 100;  // escapes the 64 KiB MR
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRemoteAccessError);
}

TEST_F(VerbsTest, ReadRequiresRemoteReadPermission) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc, /*remote_access=*/false);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.sge = {0, 8, a.mr.lkey};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  a.qp->post_send(wr);
  cl_.engine().run();
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRemoteAccessError);
}

TEST_F(VerbsTest, LocalLkeyValidatedAtPostTime) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 8, 0xbeef};
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
}

TEST_F(VerbsTest, InlineOverLimitThrows) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {0, 257, a.mr.lkey};  // max_inline is 256
  wr.remote_addr = 0;
  wr.rkey = b.mr.rkey;
  wr.inline_data = true;
  EXPECT_THROW(a.qp->post_send(wr), std::invalid_argument);
}

TEST_F(VerbsTest, RegisterMrOutOfHostMemoryThrows) {
  EXPECT_THROW(
      cl_.host(0).ctx().register_mr((1u << 20) - 16, 64, {}),
      std::out_of_range);
}

// ---------------------------------------------------------------------------
// RNR (no RECV posted).

TEST_F(VerbsTest, RnrOnRcFailsRequester) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {0, 16, a.mr.lkey};
  a.qp->post_send(wr);
  cl_.engine().run();
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRnrRetryExceeded);
  EXPECT_EQ(cl_.host(1).rnic().counters().rnr_drops, 1u);
}

TEST_F(VerbsTest, RnrOnUdSilentlyDrops) {
  auto a = make(0, Transport::kUd);
  auto b = make(1, Transport::kUd);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {0, 16, a.mr.lkey};
  wr.signaled = false;
  wr.ah = Ah{&cl_.host(1).ctx(), b.qp->qpn()};
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_EQ(cl_.host(1).rnic().counters().rnr_drops, 1u);
  EXPECT_FALSE(poll_one(*b.rcq).has_value());
}

TEST_F(VerbsTest, UdSendToUnknownQpnDropped) {
  auto a = make(0, Transport::kUd);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {0, 16, a.mr.lkey};
  wr.signaled = false;
  wr.ah = Ah{&cl_.host(1).ctx(), 424242};
  a.qp->post_send(wr);
  cl_.engine().run();
  EXPECT_EQ(cl_.host(1).rnic().counters().dropped_packets, 1u);
}

TEST_F(VerbsTest, RecvBufferTooSmallCompletesWithError) {
  auto a = make(0, Transport::kUd);
  auto b = make(1, Transport::kUd);
  // UD: a 100-byte payload needs 140 bytes (GRH); give it 64.
  b.qp->post_recv({.wr_id = 4, .sge = {0, 64, b.mr.lkey}});
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {0, 100, a.mr.lkey};
  wr.signaled = false;
  wr.ah = Ah{&cl_.host(1).ctx(), b.qp->qpn()};
  a.qp->post_send(wr);
  cl_.engine().run();
  auto wc = poll_one(*b.rcq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kLocalLengthError);
}

// ---------------------------------------------------------------------------
// READ flow control.

TEST_F(VerbsTest, OutstandingReadsLimitedButAllComplete) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  constexpr int kReads = 64;  // 4x the 16-outstanding limit
  for (int i = 0; i < kReads; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kRead;
    wr.wr_id = i;
    wr.sge = {static_cast<std::uint64_t>(i) * 64, 64, a.mr.lkey};
    wr.remote_addr = 0;
    wr.rkey = b.mr.rkey;
    a.qp->post_send(wr);
  }
  cl_.engine().run();
  int done = 0;
  while (poll_one(*a.scq)) ++done;
  EXPECT_EQ(done, kReads);
}

TEST_F(VerbsTest, RecvQueueIsFifo) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);
  for (int i = 0; i < 4; ++i) {
    b.qp->post_recv({.wr_id = static_cast<std::uint64_t>(i),
                     .sge = {static_cast<std::uint64_t>(i) * 1024, 1024,
                             b.mr.lkey}});
  }
  for (int i = 0; i < 4; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kSend;
    wr.sge = {0, 32, a.mr.lkey};
    wr.signaled = false;
    a.qp->post_send(wr);
  }
  cl_.engine().run();
  for (int i = 0; i < 4; ++i) {
    auto wc = poll_one(*b.rcq);
    ASSERT_TRUE(wc.has_value());
    EXPECT_EQ(wc->wr_id, static_cast<std::uint64_t>(i));
  }
}

TEST_F(VerbsTest, PostRecvValidatesBuffer) {
  auto b = make(1, Transport::kRc);
  EXPECT_THROW(b.qp->post_recv({.wr_id = 1, .sge = {0, 64, 0xbad}}),
               std::invalid_argument);
  EXPECT_THROW(b.qp->post_recv({.wr_id = 1, .sge = {0, 0, b.mr.lkey}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Doorbell/WQE batching: chained post_send.

TEST_F(VerbsTest, ChainDeliversEveryWrInOrder) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  std::vector<SendWr> chain(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    fill(0, i * 256, 64, static_cast<std::uint8_t>(0x10 * (i + 1)));
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = i;
    chain[i].sge = {i * 256, 64, a.mr.lkey};
    chain[i].remote_addr = 4096 + i * 256;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = (i == 3);  // selective signaling: tail only
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(matches(1, 4096 + i * 256, 64,
                        static_cast<std::uint8_t>(0x10 * (i + 1))));
  }
  auto wc = poll_one(*a.scq);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->wr_id, 3u);
  EXPECT_FALSE(poll_one(*a.scq).has_value());  // the rest were unsignaled
}

TEST_F(VerbsTest, ChainSameAddressLastWriterWins) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);

  fill(0, 0, 32, 0xA0);
  fill(0, 1024, 32, 0xB0);
  std::vector<SendWr> chain(2);
  for (std::uint32_t i = 0; i < 2; ++i) {
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = i;
    chain[i].sge = {i * 1024, 32, a.mr.lkey};
    chain[i].remote_addr = 8192;  // both target the same remote slot
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = (i == 1);
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();
  // SQ FIFO: position 1 executes after position 0.
  EXPECT_TRUE(matches(1, 8192, 32, 0xB0));
}

TEST_F(VerbsTest, ChainRingsOneDoorbellAndFetchesTheRest) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  const auto& pc = cl_.host(0).pcie().counters();
  const auto& rc = cl_.host(0).rnic().counters();
  const std::uint64_t db0 = pc.doorbells;
  const std::uint64_t wf0 = rc.wqe_fetches;

  std::vector<SendWr> chain(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = i;
    chain[i].sge = {0, 32, a.mr.lkey};
    chain[i].remote_addr = 4096;
    chain[i].rkey = b.mr.rkey;
    chain[i].inline_data = true;
    chain[i].signaled = false;
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();

  EXPECT_EQ(pc.doorbells - db0, 1u);   // head of chain: one PIO doorbell
  EXPECT_EQ(rc.wqe_fetches - wf0, 3u); // tail WQEs pulled by DMA
}

TEST_F(VerbsTest, PerWrPostsRingPerWrDoorbells) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  const auto& pc = cl_.host(0).pcie().counters();
  const auto& rc = cl_.host(0).rnic().counters();
  const std::uint64_t db0 = pc.doorbells;
  const std::uint64_t wf0 = rc.wqe_fetches;

  for (std::uint32_t i = 0; i < 4; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.sge = {0, 32, a.mr.lkey};
    wr.remote_addr = 4096;
    wr.rkey = b.mr.rkey;
    wr.inline_data = true;
    wr.signaled = false;
    a.qp->post_send(wr);  // single-WR wrapper == chain of one
  }
  cl_.engine().run();

  EXPECT_EQ(pc.doorbells - db0, 4u);
  EXPECT_EQ(rc.wqe_fetches - wf0, 0u);
}

TEST_F(VerbsTest, ChainedNonInlinePayloadsArriveByDma) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  const auto& pc = cl_.host(0).pcie().counters();
  const std::uint64_t dma0 = pc.dma_reads;

  std::vector<SendWr> chain(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    fill(0, i * 1024, 512, static_cast<std::uint8_t>(i + 1));
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = i;
    chain[i].sge = {i * 1024, 512, a.mr.lkey};  // 512 B: never inlined
    chain[i].remote_addr = 4096 + i * 1024;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = (i == 2);
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();

  // Each WR DMA-reads its payload; chained WQEs add their own fetches.
  EXPECT_GE(pc.dma_reads - dma0, 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(matches(1, 4096 + i * 1024, 512,
                        static_cast<std::uint8_t>(i + 1)));
  }
  ASSERT_TRUE(poll_one(*a.scq).has_value());
}

TEST_F(VerbsTest, ReadsNeverCoalesceDoorbells) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);

  const auto& pc = cl_.host(0).pcie().counters();
  const std::uint64_t db0 = pc.doorbells;

  std::vector<SendWr> chain(2);
  for (std::uint32_t i = 0; i < 2; ++i) {
    chain[i].opcode = Opcode::kRead;
    chain[i].wr_id = i;
    chain[i].sge = {i * 256, 64, a.mr.lkey};
    chain[i].remote_addr = 4096;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = true;
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();

  EXPECT_EQ(pc.doorbells - db0, 2u);  // READs go through the read pipeline
  int done = 0;
  while (poll_one(*a.scq)) ++done;
  EXPECT_EQ(done, 2);
}

TEST_F(VerbsTest, ChainInvalidWrThrowsAfterLegalPrefix) {
  auto a = make(0, Transport::kUc);
  auto b = make(1, Transport::kUc);
  a.qp->connect(*b.qp);

  fill(0, 0, 32, 0x5A);
  std::vector<SendWr> chain(3);
  chain[0].opcode = Opcode::kWrite;
  chain[0].sge = {0, 32, a.mr.lkey};
  chain[0].remote_addr = 4096;
  chain[0].rkey = b.mr.rkey;
  chain[0].signaled = false;
  chain[1].opcode = Opcode::kWrite;
  chain[1].sge = {0, 32, 0xbad};  // invalid lkey: rejected at this position
  chain[1].remote_addr = 4096;
  chain[1].rkey = b.mr.rkey;
  chain[2] = chain[0];
  chain[2].remote_addr = 8192;

  // ibv_post_send's bad_wr semantics: the legal prefix is on the wire, the
  // offending WR throws, the suffix is never posted.
  EXPECT_THROW(a.qp->post_send(std::span<const SendWr>(chain)),
               std::invalid_argument);
  cl_.engine().run();
  EXPECT_TRUE(matches(1, 4096, 32, 0x5A));    // prefix delivered
  EXPECT_FALSE(matches(1, 8192, 32, 0x5A));   // suffix never posted
}

TEST_F(VerbsTest, WidePollDrainsBatchedCompletionsInOrder) {
  auto a = make(0, Transport::kRc);
  auto b = make(1, Transport::kRc);
  a.qp->connect(*b.qp);

  std::vector<SendWr> chain(6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    chain[i].opcode = Opcode::kWrite;
    chain[i].wr_id = 100 + i;
    chain[i].sge = {0, 32, a.mr.lkey};
    chain[i].remote_addr = 4096 + i * 64;
    chain[i].rkey = b.mr.rkey;
    chain[i].signaled = true;
  }
  a.qp->post_send(std::span<const SendWr>(chain));
  cl_.engine().run();

  std::array<Wc, 4> wcs;
  std::size_t n = a.scq->poll(wcs);
  ASSERT_EQ(n, 4u);  // one wide poll drains up to span size, FIFO
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(wcs[i].wr_id, 100 + i);
  n = a.scq->poll(wcs);
  ASSERT_EQ(n, 2u);  // the remainder on the next sweep
  EXPECT_EQ(wcs[0].wr_id, 104u);
  EXPECT_EQ(wcs[1].wr_id, 105u);
}

}  // namespace
}  // namespace herd::verbs
