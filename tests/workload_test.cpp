// Unit tests: keyhash + workload generation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "kv/keyhash.hpp"
#include "workload/workload.hpp"

namespace herd::workload {
namespace {

TEST(KeyHash, NeverZero) {
  for (std::uint64_t r = 0; r < 100000; ++r) {
    EXPECT_FALSE(kv::hash_of_rank(r).is_zero());
  }
  std::vector<std::byte> empty;
  EXPECT_FALSE(kv::hash_key(empty).is_zero());
}

TEST(KeyHash, DeterministicAndDistinct) {
  EXPECT_EQ(kv::hash_of_rank(7), kv::hash_of_rank(7));
  std::set<std::uint64_t> his;
  for (std::uint64_t r = 0; r < 10000; ++r) {
    his.insert(kv::hash_of_rank(r).hi);
  }
  EXPECT_EQ(his.size(), 10000u);  // no collisions in the hi word
}

TEST(KeyHash, HashKeyMixesBytes) {
  std::vector<std::byte> a{std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<std::byte> b{std::byte{1}, std::byte{2}, std::byte{4}};
  EXPECT_FALSE(kv::hash_key(a) == kv::hash_key(b));
  EXPECT_TRUE(kv::hash_key(a) == kv::hash_key(a));
  // Length is significant.
  std::vector<std::byte> c{std::byte{1}, std::byte{2}, std::byte{3},
                           std::byte{0}};
  EXPECT_FALSE(kv::hash_key(a) == kv::hash_key(c));
}

TEST(KeyHash, PartitioningIsBalanced) {
  // EREW sharding (§4.1): partitions should split the keyspace evenly.
  constexpr std::uint32_t kParts = 6;
  std::map<std::uint32_t, int> counts;
  constexpr int kKeys = 60000;
  for (std::uint64_t r = 0; r < kKeys; ++r) {
    ++counts[kv::partition_of(kv::hash_of_rank(r), kParts)];
  }
  for (auto& [p, n] : counts) {
    EXPECT_LT(p, kParts);
    EXPECT_NEAR(n, kKeys / kParts, kKeys / kParts * 0.05);
  }
}

TEST(Workload, GetFractionRespected) {
  for (double gf : {0.0, 0.5, 0.95, 1.0}) {
    WorkloadConfig cfg;
    cfg.get_fraction = gf;
    WorkloadGenerator wl(cfg);
    int gets = 0;
    constexpr int kOps = 20000;
    for (int i = 0; i < kOps; ++i) {
      if (wl.next().type == OpType::kGet) ++gets;
    }
    EXPECT_NEAR(static_cast<double>(gets) / kOps, gf, 0.02) << gf;
  }
}

TEST(Workload, UniformKeysCoverUniverse) {
  WorkloadConfig cfg;
  cfg.n_keys = 100;
  WorkloadGenerator wl(cfg);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    auto op = wl.next();
    EXPECT_LT(op.rank, 100u);
    seen.insert(op.rank);
  }
  EXPECT_GT(seen.size(), 95u);
}

TEST(Workload, ZipfSkewsTowardLowRanks) {
  WorkloadConfig cfg;
  cfg.zipf = true;
  cfg.zipf_theta = 0.99;
  cfg.n_keys = 1u << 20;
  WorkloadGenerator wl(cfg);
  std::map<std::uint64_t, int> counts;
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) ++counts[wl.next().rank];
  // Rank 0 dominates; top-10 ranks take a large share.
  int top10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(counts[0], kOps / 20);          // > 5% on the hottest key
  EXPECT_GT(top10, kOps / 6);               // > ~17% on top 10
}

TEST(Workload, KeyMatchesRank) {
  WorkloadConfig cfg;
  WorkloadGenerator wl(cfg);
  for (int i = 0; i < 100; ++i) {
    auto op = wl.next();
    EXPECT_TRUE(op.key == kv::hash_of_rank(op.rank));
  }
}

TEST(Workload, SeedsProduceDistinctStreams) {
  WorkloadConfig a, b;
  a.seed = 1;
  b.seed = 2;
  WorkloadGenerator wa(a), wb(b);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (wa.next().rank == wb.next().rank) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Workload, SameSeedIsReproducible) {
  WorkloadConfig cfg;
  cfg.seed = 77;
  WorkloadGenerator a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    auto oa = a.next();
    auto ob = b.next();
    EXPECT_EQ(oa.rank, ob.rank);
    EXPECT_EQ(oa.type, ob.type);
  }
}

TEST(Workload, FillValueDeterministicPerRank) {
  std::vector<std::byte> a(64), b(64), c(64);
  WorkloadGenerator::fill_value(5, a);
  WorkloadGenerator::fill_value(5, b);
  WorkloadGenerator::fill_value(6, c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Workload, FillValuePrefixStable) {
  // A shorter fill is a prefix of a longer one for the same rank, so
  // variable-length checks compose.
  std::vector<std::byte> small(16), large(64);
  WorkloadGenerator::fill_value(9, small);
  WorkloadGenerator::fill_value(9, large);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), large.begin()));
}

}  // namespace
}  // namespace herd::workload
