// Perf-regression gate: diffs two herd-bench/1 documents (or two
// directories of them) and fails when any metric moved past its threshold
// in the bad direction.
//
// Usage:
//   bench_compare [options] BASELINE.json CURRENT.json
//   bench_compare [options] --dir BASELINE_DIR CURRENT_DIR
//
// Options:
//   --threshold=FRAC            Default relative threshold (default 0.10,
//                               i.e. a 10% move in the bad direction fails).
//   --metric-threshold=M=FRAC   Per-metric threshold override; repeatable
//                               (e.g. --metric-threshold=avg_us=0.25).
//   --help                      Print this help and exit 0.
//
// Direction is inferred from the metric name: throughput-like metrics
// (Mops, *_rate, *_gbps, hits) must not drop; latency-like metrics (*_us,
// *_ns, misses) must not rise; anything else is gated in both directions.
// `bottleneck_util` and the x coordinate are never gated.
//
// In --dir mode every BENCH_*.json in BASELINE_DIR must exist in
// CURRENT_DIR; a missing file is a regression (a bench silently vanishing
// is the worst kind of slowdown). Extra files in CURRENT_DIR are fine —
// new benches don't need a baseline to land.
//
// Exit codes: 0 = no regressions, 1 = regressions or invalid input,
// 64 = usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_compare.hpp"
#include "obs/json.hpp"

namespace {

const char* kUsage =
    "usage: bench_compare [options] BASELINE.json CURRENT.json\n"
    "       bench_compare [options] --dir BASELINE_DIR CURRENT_DIR\n"
    "\n"
    "Compares herd-bench/1 documents and exits 1 if any metric regressed\n"
    "past its threshold (relative, in the metric's bad direction).\n"
    "\n"
    "options:\n"
    "  --threshold=FRAC            default relative threshold (default "
    "0.10)\n"
    "  --metric-threshold=M=FRAC   per-metric override, repeatable\n"
    "  --dir                       compare directories of BENCH_*.json\n"
    "  --help                      show this help\n"
    "\n"
    "exit: 0 = clean, 1 = regression or invalid input, 64 = usage\n";

bool load_json(const std::string& path, herd::obs::Json& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    out = herd::obs::Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: not parseable as JSON: %s\n",
                 path.c_str(), e.what());
    return false;
  }
  return true;
}

// Compares one baseline/current file pair; returns the number of failures
// (regressions + validation problems) and prints each one.
int compare_files(const std::string& base_path, const std::string& cur_path,
                  const herd::obs::CompareOptions& opt) {
  herd::obs::Json base, cur;
  if (!load_json(base_path, base) || !load_json(cur_path, cur)) return 1;
  herd::obs::CompareResult res = herd::obs::compare_bench(base, cur, opt);
  for (const auto& p : res.problems) {
    std::fprintf(stderr, "INVALID %s vs %s: %s\n", base_path.c_str(),
                 cur_path.c_str(), p.c_str());
  }
  for (const auto& r : res.regressions) {
    std::fprintf(stderr, "REGRESSION %s\n", r.note.c_str());
  }
  if (res.ok()) {
    std::printf("%s vs %s: ok (%zu metrics checked)\n", base_path.c_str(),
                cur_path.c_str(), res.checked);
  }
  return static_cast<int>(res.problems.size() + res.regressions.size());
}

}  // namespace

int main(int argc, char** argv) {
  herd::obs::CompareOptions opt;
  bool dir_mode = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--dir") {
      dir_mode = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      opt.default_threshold = std::atof(arg.c_str() + 12);
      if (opt.default_threshold <= 0) {
        std::fprintf(stderr, "bench_compare: bad --threshold: %s\n",
                     arg.c_str());
        return 64;
      }
    } else if (arg.rfind("--metric-threshold=", 0) == 0) {
      std::string spec = arg.substr(19);
      auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "bench_compare: bad --metric-threshold: %s\n",
                     arg.c_str());
        return 64;
      }
      opt.metric_thresholds[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option %s\n%s",
                   arg.c_str(), kUsage);
      return 64;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fputs(kUsage, stderr);
    return 64;
  }

  if (!dir_mode) {
    return compare_files(paths[0], paths[1], opt) == 0 ? 0 : 1;
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(paths[0], ec) || !fs::is_directory(paths[1], ec)) {
    std::fprintf(stderr, "bench_compare: --dir needs two directories\n");
    return 64;
  }
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(paths[0])) {
    std::string n = e.path().filename().string();
    if (n.rfind("BENCH_", 0) == 0 && n.size() > 5 &&
        n.substr(n.size() - 5) == ".json") {
      names.push_back(n);
    }
  }
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    std::fprintf(stderr, "bench_compare: no BENCH_*.json in %s\n",
                 paths[0].c_str());
    return 1;
  }
  int failures = 0;
  for (const auto& n : names) {
    std::string base_path = (fs::path(paths[0]) / n).string();
    std::string cur_path = (fs::path(paths[1]) / n).string();
    if (!fs::exists(cur_path, ec)) {
      std::fprintf(stderr,
                   "REGRESSION %s: present in baseline but missing from %s\n",
                   n.c_str(), paths[1].c_str());
      ++failures;
      continue;
    }
    failures += compare_files(base_path, cur_path, opt);
  }
  if (failures == 0) {
    std::printf("bench_compare: %zu file(s) clean\n", names.size());
  }
  return failures == 0 ? 0 : 1;
}
