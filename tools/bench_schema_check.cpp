// Validates BENCH_*.json files against the herd-bench/1 schema.
//
// Usage: bench_schema_check FILE [FILE...]
//
// This is the CI gate behind the bench-smoke job: every per-figure binary
// writes a BENCH_fig<N>.json, and this tool fails the build if any of them
// drifts from the schema documented in src/obs/bench_report.hpp. It uses
// the same obs::validate_bench_json() checker as tests/obs_test.cpp, so the
// gate and the unit tests cannot disagree about what "valid" means.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json [more...]\n", argv[0]);
    return 64;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<std::string> problems;
    try {
      herd::obs::Json doc = herd::obs::Json::parse(buf.str());
      problems = herd::obs::validate_bench_json(doc);
    } catch (const std::exception& e) {
      problems.push_back(std::string("not parseable as JSON: ") + e.what());
    }
    if (problems.empty()) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      ++bad;
      for (const auto& p : problems) {
        std::fprintf(stderr, "%s: %s\n", argv[i], p.c_str());
      }
    }
  }
  return bad == 0 ? 0 : 1;
}
