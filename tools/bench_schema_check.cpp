// Validates bench output files against their declared schema.
//
// Usage: bench_schema_check FILE [FILE...]
//
// Dispatches on the document's top-level "schema" field: "herd-bench/1"
// (BENCH_*.json, checked by obs::validate_bench_json — including each
// point's optional per-request "tail" breakdown), "herd-timeseries/1"
// (TIMESERIES_*.json flight-recorder dumps, checked by
// obs::validate_timeseries_json), and "herd-trace/2" (TRACE_*.json Chrome
// traces, checked by obs::validate_trace_json — which rejects any "B"
// phase event, because an unpaired span_begin exports as a lone "B"). A
// document with any other schema string fails — an unknown schema means a
// producer drifted without updating the gate. This is the CI gate behind
// the bench-smoke job; it uses the same validators as tests/obs_test.cpp
// and tests/flight_test.cpp, so the gate and the unit tests cannot
// disagree about what "valid" means.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/bench_report.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json [more...]\n", argv[0]);
    return 64;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<std::string> problems;
    try {
      herd::obs::Json doc = herd::obs::Json::parse(buf.str());
      std::string schema;
      if (doc.is_object()) {
        if (const herd::obs::Json* s = doc.find("schema");
            s != nullptr && s->is_string()) {
          schema = s->as_string();
        }
      }
      if (schema == "herd-timeseries/1") {
        problems = herd::obs::validate_timeseries_json(doc);
      } else if (schema == "herd-bench/1") {
        problems = herd::obs::validate_bench_json(doc);
      } else if (schema == "herd-trace/2") {
        problems = herd::obs::validate_trace_json(doc);
      } else {
        problems.push_back(
            "unknown schema \"" + schema +
            "\" (expected herd-bench/1, herd-timeseries/1, or herd-trace/2)");
      }
    } catch (const std::exception& e) {
      problems.push_back(std::string("not parseable as JSON: ") + e.what());
    }
    if (problems.empty()) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      ++bad;
      for (const auto& p : problems) {
        std::fprintf(stderr, "%s: %s\n", argv[i], p.c_str());
      }
    }
  }
  return bad == 0 ? 0 : 1;
}
