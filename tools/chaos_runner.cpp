// chaos_runner — multi-seed chaos sweep over the HERD testbed.
//
// For each seed: sample a scenario (topology + workload + composed fault
// plan), run it, and check the recorded history for per-key
// linearizability. Every Nth seed is re-run and its determinism
// fingerprint compared (a mismatch means the simulator leaked
// nondeterminism — as serious as a linearizability bug, since replay and
// shrinking depend on it). On a violation the scenario is shrunk and the
// minimal fault plan printed as JSON and as a C++ snippet.
//
// Exit codes: 0 = clean sweep, 1 = linearizability or verbs-contract
//             violation, 2 = determinism mismatch, 64 = bad usage.
//
//   chaos_runner --seeds 100 --budget-ticks 3000000000
//   chaos_runner --seeds 1 --start-seed 77 --break-dedup   # reproduce
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "chaos/chaos.hpp"
#include "fault/fault.hpp"

namespace {

struct Options {
  std::uint64_t seeds = 100;
  std::uint64_t start_seed = 1;
  herd::sim::Tick budget_ticks = 0;  // 0 = envelope default
  std::uint64_t replay_every = 5;    // 0 = never replay
  std::uint64_t trace_every = 32;    // request-lifecycle trace sampling
  std::uint64_t checker_budget = 1000000;
  std::uint32_t shrink_runs = 64;
  std::uint64_t flight_dump = 0;  // 0 = off; N = dump last N flight windows
  bool break_dedup = false;
  bool crash_primary = false;
  bool drop_replication = false;
  bool overload_burst = false;
  bool drop_shedding = false;
  bool shrink = true;
  bool verbose = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start-seed S] [--budget-ticks T]\n"
               "          [--replay-every K] [--trace-every K]\n"
               "          [--checker-budget B] [--shrink-runs R]\n"
               "          [--flight-dump N] [--break-dedup] [--no-shrink]\n"
               "          [--crash-primary] [--drop-replication]\n"
               "          [--overload-burst] [--drop-shedding] [--verbose]\n"
               "\n"
               "--flight-dump N: on a violation, replay the failing seed\n"
               "with the flight recorder on and print the last N resource-\n"
               "utilization windows (herd-timeseries/1 JSON) next to the\n"
               "scenario, so the bug report carries the resource timeline.\n"
               "--crash-primary: failover sweep — every seed runs with\n"
               "primary-backup replication and a scripted crash of one shard\n"
               "primary mid-window; the checker then holds the promoted\n"
               "backup to every previously acknowledged write.\n"
               "--drop-replication: plant the acked-but-not-replicated bug\n"
               "(canary). A --crash-primary sweep with this flag must FAIL;\n"
               "a clean exit means the checker went blind.\n"
               "--overload-burst: every seed runs with admission control on\n"
               "and deliberately tight quotas/watermarks, so requests are\n"
               "shed under load; the checker treats fully-shed ops as\n"
               "never-applied, so a server that applied-then-shed (or left\n"
               "dedup state behind) violates.\n"
               "--drop-shedding: disable all shedding while keeping the\n"
               "overload wire format (goodput canary; collapse is caught by\n"
               "the fig16 bench gate, not by this checker).\n",
               argv0);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](std::uint64_t& out) {
      return ++i < argc && parse_u64(argv[i], out);
    };
    std::uint64_t v = 0;
    if (a == "--seeds" && next(opt.seeds)) continue;
    if (a == "--start-seed" && next(opt.start_seed)) continue;
    if (a == "--budget-ticks" && next(v)) {
      opt.budget_ticks = v;
      continue;
    }
    if (a == "--replay-every" && next(opt.replay_every)) continue;
    if (a == "--trace-every" && next(opt.trace_every)) continue;
    if (a == "--checker-budget" && next(opt.checker_budget)) continue;
    if (a == "--flight-dump" && next(opt.flight_dump)) continue;
    if (a == "--shrink-runs" && next(v)) {
      opt.shrink_runs = static_cast<std::uint32_t>(v);
      continue;
    }
    if (a == "--break-dedup") {
      opt.break_dedup = true;
      continue;
    }
    if (a == "--crash-primary") {
      opt.crash_primary = true;
      continue;
    }
    if (a == "--drop-replication") {
      opt.drop_replication = true;
      continue;
    }
    if (a == "--overload-burst") {
      opt.overload_burst = true;
      continue;
    }
    if (a == "--drop-shedding") {
      opt.drop_shedding = true;
      continue;
    }
    if (a == "--no-shrink") {
      opt.shrink = false;
      continue;
    }
    if (a == "--verbose") {
      opt.verbose = true;
      continue;
    }
    usage(argv[0]);
    return false;
  }
  return true;
}

void report_violation(const herd::chaos::RunOutcome& out, const Options& opt) {
  if (out.contract_violations > 0) {
    std::printf("\n=== VERBS CONTRACT VIOLATION ===\n%s",
                out.contract_diagnostics.c_str());
  } else {
    std::printf("\n=== LINEARIZABILITY VIOLATION ===\n%s\n",
                out.check.explanation.c_str());
  }
  std::printf("scenario: %s\n", out.scenario.to_json().c_str());

  if (opt.flight_dump > 0) {
    // Replay the same seed with the flight recorder on: the sim is
    // deterministic, so the timeline below is the timeline of the failure.
    herd::chaos::Scenario fs = out.scenario;
    fs.flight_windows = static_cast<std::uint32_t>(opt.flight_dump);
    herd::chaos::RunOutcome fout =
        herd::chaos::run_scenario(fs, opt.checker_budget);
    if (!fout.flight_json.empty()) {
      std::printf("flight recorder (last %llu windows):\n%s\n",
                  static_cast<unsigned long long>(opt.flight_dump),
                  fout.flight_json.c_str());
    } else {
      std::printf("flight recorder: no windows recorded\n");
    }
  }

  if (!opt.shrink) return;

  std::printf("shrinking (budget %u runs)...\n", opt.shrink_runs);
  herd::chaos::ShrinkResult sh = herd::chaos::shrink(
      out.scenario, opt.shrink_runs, opt.checker_budget);
  std::printf("shrunk: %zu -> %zu faults, %u -> %u clients (%u runs)\n",
              sh.faults_before, sh.faults_after, sh.clients_before,
              sh.clients_after, sh.runs);
  std::printf("minimal scenario: %s\n", sh.minimal.to_json().c_str());
  std::printf("minimal plan as C++:\n%s",
              herd::fault::to_cpp(sh.minimal.plan).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return 64;

  herd::chaos::ScenarioEnvelope env;
  if (opt.budget_ticks > 0) env.budget = opt.budget_ticks;
  if (opt.crash_primary) {
    env.force_crash_primary = true;
    // Failover needs a backup to promote.
    env.min_server_procs = std::max<std::uint32_t>(2, env.min_server_procs);
  }
  env.drop_replication = opt.drop_replication;
  env.force_overload_burst = opt.overload_burst;
  env.drop_shedding = opt.drop_shedding;

  // Aggregated across the sweep for the closing report.
  std::map<std::string, std::uint64_t> totals;
  herd::chaos::CheckStats agg;
  std::uint64_t replays = 0;

  for (std::uint64_t i = 0; i < opt.seeds; ++i) {
    std::uint64_t seed = opt.start_seed + i;
    herd::chaos::Scenario sc = herd::chaos::generate_scenario(seed, env);
    sc.break_dedup = opt.break_dedup;
    sc.trace_sample_every = opt.trace_every;
    herd::chaos::RunOutcome out =
        herd::chaos::run_scenario(sc, opt.checker_budget);

    if (opt.verbose || herd::chaos::violation(out)) {
      std::printf("%s\n", herd::chaos::summarize(out).c_str());
    }

    for (const auto& [name, value] : out.counters.counters()) {
      totals[name] += value;
    }
    agg.histories_checked += out.check.stats.histories_checked;
    agg.ops_checked += out.check.stats.ops_checked;
    agg.maybe_applied += out.check.stats.maybe_applied;
    agg.budget_exhausted += out.check.stats.budget_exhausted;
    agg.max_states_visited =
        std::max(agg.max_states_visited, out.check.stats.max_states_visited);

    if (herd::chaos::violation(out)) {
      report_violation(out, opt);
      return 1;
    }

    if (opt.replay_every > 0 && i % opt.replay_every == 0) {
      ++replays;
      herd::chaos::RunOutcome again =
          herd::chaos::run_scenario(sc, opt.checker_budget);
      if (again.fingerprint != out.fingerprint) {
        std::printf(
            "\n=== DETERMINISM MISMATCH ===\nseed %llu: fingerprint "
            "%016llx vs %016llx on replay\nscenario: %s\n",
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(out.fingerprint),
            static_cast<unsigned long long>(again.fingerprint),
            sc.to_json().c_str());
        return 2;
      }
      // The fingerprint already folds the trace bytes, but diverging
      // exports with a colliding hash would slip through — compare the
      // bytes themselves, and the metric snapshots while we're at it.
      if (again.trace_json != out.trace_json) {
        std::printf(
            "\n=== DETERMINISM MISMATCH ===\nseed %llu: trace export "
            "differs on replay (%zu vs %zu bytes)\nscenario: %s\n",
            static_cast<unsigned long long>(seed), out.trace_json.size(),
            again.trace_json.size(), sc.to_json().c_str());
        return 2;
      }
      if (!(again.counters == out.counters)) {
        std::printf(
            "\n=== DETERMINISM MISMATCH ===\nseed %llu: metric snapshot "
            "differs on replay\nscenario: %s\n",
            static_cast<unsigned long long>(seed), sc.to_json().c_str());
        return 2;
      }
    }
  }

  std::printf("%llu seeds: all linearizable (%llu replayed bit-identically)\n",
              static_cast<unsigned long long>(opt.seeds),
              static_cast<unsigned long long>(replays));
  std::printf(
      "checker: %llu key histories, %llu ops (%llu maybe-applied), "
      "max per-key states %llu, budget exhausted on %llu keys\n",
      static_cast<unsigned long long>(agg.histories_checked),
      static_cast<unsigned long long>(agg.ops_checked),
      static_cast<unsigned long long>(agg.maybe_applied),
      static_cast<unsigned long long>(agg.max_states_visited),
      static_cast<unsigned long long>(agg.budget_exhausted));
  std::printf("aggregate counters:\n");
  for (const auto& [name, value] : totals) {
    std::printf("  %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
