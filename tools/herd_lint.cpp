// herd_lint — project-invariant lint for the HERD simulator tree.
//
// Walks a source tree and enforces invariants that generic tools don't
// know about:
//
//   determinism    No wall-clock or entropy calls (time, clock_gettime,
//                  gettimeofday, std::chrono::*_clock::now, rand, random,
//                  std::random_device, getpid-as-seed) inside simulation
//                  paths (src/sim, src/rnic, src/herd, src/chaos, src/fault,
//                  src/fabric, src/cluster, src/verbs, src/pcie, src/kv,
//                  src/workload). The chaos harness replays seeds by
//                  fingerprint; one hidden entropy source breaks replay and
//                  shrinking silently.
//   ptr-key-iter   No range-for / iterator loops over pointer-keyed
//                  unordered containers in simulation paths. Pointer hash
//                  order varies run to run (ASLR), so iterating one leaks
//                  allocator layout into simulation behavior. Declaring the
//                  map is fine; iterating it is not.
//   raw-new        No raw `new` / `delete` outside allocator/arena code.
//                  Ownership goes through std::unique_ptr / containers.
//   resource-registry
//                  Files in simulation paths that construct a
//                  `sim::Resource` (member declaration or make_unique) must
//                  also register resources with obs::ResourceRegistry —
//                  otherwise the flight recorder and bottleneck attribution
//                  silently miss a queueing server and the "bottleneck"
//                  field lies. A file counts as registry-aware when it
//                  mentions ResourceRegistry, register_resources, or the
//                  resources_ registry member; anything else needs a
//                  suppression entry explaining why its resource is exempt.
//   bounded-queue  Files in src/herd that declare a std::deque / std::queue
//                  must also reference a capacity or watermark identifier
//                  (queue_high, watermark, capacity, window) somewhere in
//                  code — the signal that SOMETHING bounds the queue. An
//                  unbounded server-side queue is exactly the congestion-
//                  collapse ingredient the overload subsystem exists to
//                  remove: under overload it absorbs arrivals until
//                  time-in-queue exceeds every client's patience and all
//                  service work is wasted on abandoned requests. Queues
//                  bounded by something the lint can't see (a retention
//                  horizon, a protocol window held elsewhere) get a
//                  suppression entry explaining the actual bound.
//   shard-route    No key-to-process routing in src/herd that bypasses the
//                  shard map: kv::partition_of() calls, or key-derived
//                  `% n_server_procs` arithmetic. After a backup promotion
//                  or a live shard migration the primary for a key is NOT
//                  hash(key) % n_server_procs — requests routed that way
//                  land on a process that no longer owns the shard.
//                  ShardMap::shard_of is the one sanctioned wrapper
//                  (suppressed in herd_lint.supp).
//
// Matching happens on a comment- and string-stripped view of each file, so
// a mention of rand() in a comment never fires. Exceptions are declared in
// a suppression file (one `path-substring rule` pair per line), keeping
// every escape hatch reviewable in one place.
//
// Usage:
//   herd_lint [--supp FILE] [--verbose] DIR...
//
// Exit codes: 0 = clean, 1 = violations found, 64 = bad usage / IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string detail;
};

struct Suppression {
  std::string path_substring;
  std::string rule;  // "*" matches every rule
  mutable bool used = false;
};

struct Options {
  std::vector<fs::path> roots;
  fs::path supp_file;
  bool verbose = false;
};

// ---------------------------------------------------------------------------
// Lexing: produce a copy of the source with comments and string/char
// literals blanked out (newlines preserved so line numbers survive).
// ---------------------------------------------------------------------------

std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t paren = src.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_delim.clear();
          raw_delim += ')';
          raw_delim.append(src, i + 2, paren - (i + 2));
          raw_delim += '"';
          out.append(paren - i + 1, ' ');
          i = paren;
          st = St::kRawString;
        } else if (c == '"') {
          st = St::kString;
          out += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kRawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.append(raw_delim.size(), ' ');
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True iff `word` appears in `line` as a whole identifier (not a substring
/// of a longer identifier, not a member/namespace-qualified tail unless
/// `allow_qualified`).
bool has_identifier(std::string_view line, std::string_view word,
                    bool allow_qualified = false) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + word.size();
    bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) {
      if (!allow_qualified && pos >= 1 &&
          (line[pos - 1] == '.' ||
           (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>'))) {
        pos = end;
        continue;  // obj.rand / obj->rand is a member, not ::rand
      }
      return true;
    }
    pos = end;
  }
  return false;
}

/// True iff the identifier is followed (after spaces) by an open paren —
/// i.e. it is being called, not merely named.
bool has_call(std::string_view line, std::string_view fn) {
  std::size_t pos = 0;
  while ((pos = line.find(fn, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || (!is_ident_char(line[pos - 1]) &&
                                line[pos - 1] != '.' &&
                                !(pos >= 2 && line[pos - 2] == '-' &&
                                  line[pos - 1] == '>'));
    std::size_t end = pos + fn.size();
    std::size_t j = end;
    while (j < line.size() && line[j] == ' ') ++j;
    if (left_ok && (end >= line.size() || !is_ident_char(line[end])) &&
        j < line.size() && line[j] == '(') {
      return true;
    }
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Paths under these directories are simulation-deterministic: every source
/// of randomness must flow from an explicit seed.
bool in_sim_path(const std::string& path) {
  static const char* kSimDirs[] = {
      "src/sim/",   "src/rnic/",    "src/herd/",  "src/chaos/",
      "src/fault/", "src/fabric/",  "src/cluster/", "src/verbs/",
      "src/pcie/",  "src/kv/",      "src/workload/",
  };
  for (const char* d : kSimDirs) {
    if (path.find(d) != std::string::npos) return true;
  }
  return false;
}

void check_determinism(const std::string& path, std::string_view line,
                       std::size_t lineno, std::vector<Violation>& out) {
  if (!in_sim_path(path)) return;
  struct Banned {
    const char* fn;
    const char* why;
  };
  static const Banned kBannedCalls[] = {
      {"time", "wall clock breaks seeded replay"},
      {"clock_gettime", "wall clock breaks seeded replay"},
      {"gettimeofday", "wall clock breaks seeded replay"},
      {"rand", "unseeded libc entropy breaks seeded replay"},
      {"srand", "global libc PRNG state breaks seeded replay"},
      {"random", "unseeded libc entropy breaks seeded replay"},
      {"rand_r", "libc PRNG breaks seeded replay"},
      {"drand48", "libc PRNG breaks seeded replay"},
      {"lrand48", "libc PRNG breaks seeded replay"},
      {"getpid", "process id is not part of the seed"},
  };
  for (const Banned& b : kBannedCalls) {
    if (has_call(line, b.fn)) {
      out.push_back({path, lineno, "determinism",
                     std::string(b.fn) + "() in a simulation path: " + b.why});
    }
  }
  static const Banned kBannedNames[] = {
      {"random_device", "hardware entropy breaks seeded replay"},
      {"system_clock", "wall clock breaks seeded replay"},
      {"steady_clock", "host clock breaks seeded replay"},
      {"high_resolution_clock", "host clock breaks seeded replay"},
  };
  for (const Banned& b : kBannedNames) {
    if (has_identifier(line, b.fn, /*allow_qualified=*/true)) {
      out.push_back({path, lineno, "determinism",
                     std::string(b.fn) + " in a simulation path: " + b.why});
    }
  }
}

/// Detects declarations of unordered containers keyed by pointer AND
/// range-for iteration over identifiers that were so declared. The
/// declaration itself is legal (lookup order doesn't matter); iteration
/// order is ASLR-dependent, so looping one feeds allocator layout into
/// simulation behavior.
struct PtrKeyTracker {
  std::vector<std::string> ptr_keyed_names;

  void scan_declaration(std::string_view line) {
    // unordered_{map,set}<T*  ... > name
    for (const char* kw : {"unordered_map", "unordered_set"}) {
      std::size_t pos = line.find(kw);
      while (pos != std::string_view::npos) {
        std::size_t lt = line.find('<', pos);
        if (lt == std::string_view::npos) break;
        // First template argument, up to ',' or matching '>'.
        std::size_t depth = 1;
        std::size_t j = lt + 1;
        std::size_t arg_end = line.size();
        for (; j < line.size() && depth > 0; ++j) {
          if (line[j] == '<') ++depth;
          if (line[j] == '>') --depth;
          if (line[j] == ',' && depth == 1) {
            arg_end = j;
            break;
          }
          if (depth == 0) arg_end = j;
        }
        std::string_view key = line.substr(lt + 1, arg_end - lt - 1);
        if (key.find('*') != std::string_view::npos) {
          // Variable name follows the closing '>' (skip to it).
          std::size_t d2 = 1;
          std::size_t k = lt + 1;
          for (; k < line.size() && d2 > 0; ++k) {
            if (line[k] == '<') ++d2;
            if (line[k] == '>') --d2;
          }
          while (k < line.size() &&
                 (line[k] == ' ' || line[k] == '&' || line[k] == '*')) {
            ++k;
          }
          std::size_t name_end = k;
          while (name_end < line.size() && is_ident_char(line[name_end])) {
            ++name_end;
          }
          if (name_end > k) {
            ptr_keyed_names.emplace_back(line.substr(k, name_end - k));
          }
        }
        pos = line.find(kw, pos + 1);
      }
    }
  }

  void check_iteration(const std::string& path, std::string_view line,
                       std::size_t lineno, std::vector<Violation>& out) {
    if (ptr_keyed_names.empty()) return;
    // for ( ... : name ) — range-for over a tracked container.
    std::size_t colon = line.find(" : ");
    if (colon == std::string_view::npos ||
        line.find("for") == std::string_view::npos) {
      return;
    }
    std::string_view tail = line.substr(colon + 3);
    for (const std::string& name : ptr_keyed_names) {
      if (has_identifier(tail, name)) {
        out.push_back(
            {path, lineno, "ptr-key-iter",
             "range-for over pointer-keyed container '" + name +
                 "': iteration order depends on allocator layout"});
      }
    }
  }
};

/// True iff the stripped file references the resource registry — the signal
/// that its sim::Resource instances are (or can be) registered for flight
/// recording. `resources_` is the conventional registry pointer/member name
/// (see cluster::Cluster and fabric::Fabric).
bool mentions_resource_registry(const std::string& stripped) {
  return has_identifier(stripped, "ResourceRegistry",
                        /*allow_qualified=*/true) ||
         has_identifier(stripped, "register_resources",
                        /*allow_qualified=*/true) ||
         has_identifier(stripped, "resources_", /*allow_qualified=*/true);
}

/// Flags `sim::Resource name` declarations and make_unique<sim::Resource>
/// in simulation paths of files that never touch the registry. References
/// and pointers (`sim::Resource&`, `sim::Resource*`) pass: borrowing an
/// already-registered resource is fine, constructing an invisible one is
/// not.
void check_resource_registry(const std::string& path, std::string_view line,
                             std::size_t lineno, bool registry_aware,
                             std::vector<Violation>& out) {
  if (registry_aware || !in_sim_path(path)) return;
  if (line.find("make_unique<sim::Resource>") != std::string_view::npos) {
    out.push_back({path, lineno, "resource-registry",
                   "sim::Resource constructed in a file that never "
                   "registers with obs::ResourceRegistry: the flight "
                   "recorder cannot see it"});
    return;
  }
  std::size_t pos = 0;
  static constexpr std::string_view kType = "sim::Resource";
  while ((pos = line.find(kType, pos)) != std::string_view::npos) {
    std::size_t end = pos + kType.size();
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    // Declaration form: type, whitespace, identifier. `&`/`*`/`>` after the
    // type means a reference, pointer, or template argument — not a new
    // instance this file owns.
    std::size_t j = end;
    while (j < line.size() && line[j] == ' ') ++j;
    if (left_ok && j > end && j < line.size() && is_ident_char(line[j])) {
      out.push_back({path, lineno, "resource-registry",
                     "sim::Resource declared in a file that never "
                     "registers with obs::ResourceRegistry: the flight "
                     "recorder cannot see it"});
      return;
    }
    pos = end;
  }
}

/// True iff the stripped file references an identifier that conventionally
/// bounds queue growth: the overload watermarks, an explicit capacity, the
/// protocol window (the client-side queues are all window-clamped), or the
/// admission machinery itself (AdmissionGate / DegradedMode — a file that
/// owns the gate is the bound).
bool mentions_queue_bound(const std::string& stripped) {
  return has_identifier(stripped, "queue_high", /*allow_qualified=*/true) ||
         has_identifier(stripped, "queue_low", /*allow_qualified=*/true) ||
         has_identifier(stripped, "watermark", /*allow_qualified=*/true) ||
         has_identifier(stripped, "capacity", /*allow_qualified=*/true) ||
         has_identifier(stripped, "window", /*allow_qualified=*/true) ||
         has_identifier(stripped, "AdmissionGate", /*allow_qualified=*/true) ||
         has_identifier(stripped, "DegradedMode", /*allow_qualified=*/true);
}

/// Flags std::deque / std::queue declarations in src/herd files that never
/// reference a bound (see mentions_queue_bound). File-granular on purpose:
/// proving a particular declaration bounded needs flow analysis, but a file
/// that grows a queue and never names any limit is the pattern that turns
/// overload into congestion collapse.
void check_bounded_queue(const std::string& path, std::string_view line,
                         std::size_t lineno, bool bound_aware,
                         std::vector<Violation>& out) {
  if (bound_aware || path.find("src/herd/") == std::string::npos) return;
  for (const char* kw : {"std::deque", "std::queue"}) {
    std::size_t pos = line.find(kw);
    while (pos != std::string_view::npos) {
      std::size_t end = pos + std::string_view(kw).size();
      if ((pos == 0 || !is_ident_char(line[pos - 1])) && end < line.size() &&
          line[end] == '<') {
        out.push_back({path, lineno, "bounded-queue",
                       std::string(kw) +
                           " in a file that never references a capacity or "
                           "watermark (queue_high/watermark/capacity/window):"
                           " unbounded queues turn overload into congestion "
                           "collapse"});
        return;
      }
      pos = line.find(kw, end);
    }
  }
}

void check_raw_new(const std::string& path, std::string_view line,
                   std::size_t lineno, std::vector<Violation>& out) {
  // `= delete` / `delete;` are declarations, not deallocations. `new (`
  // placement-new inside arena code is suppressed via the supp file.
  if (has_identifier(line, "new", /*allow_qualified=*/true)) {
    std::size_t pos = line.find("new");
    while (pos != std::string_view::npos) {
      bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      std::size_t end = pos + 3;
      bool right_ok = end >= line.size() || !is_ident_char(line[end]);
      if (left_ok && right_ok) {
        // Allow `make_unique`-style false hits: require whitespace-then-type
        // or '(' after.
        std::size_t j = end;
        while (j < line.size() && line[j] == ' ') ++j;
        if (j < line.size() &&
            (is_ident_char(line[j]) || line[j] == '(' || line[j] == ':')) {
          out.push_back({path, lineno, "raw-new",
                         "raw `new`: ownership must go through "
                         "std::unique_ptr or a container"});
          break;
        }
      }
      pos = line.find("new", end);
    }
  }
  if (has_identifier(line, "delete", /*allow_qualified=*/true)) {
    std::size_t pos = line.find("delete");
    std::size_t end = pos + 6;
    std::size_t j = end;
    while (j < line.size() && line[j] == ' ') ++j;
    bool is_decl = j >= line.size() || line[j] == ';' || line[j] == ',' ||
                   line[j] == ')';
    bool left_is_eq = false;
    for (std::size_t k = pos; k-- > 0;) {
      if (line[k] == ' ') continue;
      left_is_eq = line[k] == '=';
      break;
    }
    if (!(is_decl && left_is_eq) && !is_decl) {
      out.push_back({path, lineno, "raw-new",
                     "raw `delete`: ownership must go through "
                     "std::unique_ptr or a container"});
    }
  }
}

/// Key-to-process routing in herd code must flow through the ShardMap:
/// after a promotion or live migration a shard's primary is NOT
/// hash(key) % n_server_procs, so a direct kv::partition_of() call — or
/// hand-rolled modulo of key material by the process count — silently
/// routes requests to a process that no longer owns the shard. Plain
/// `% n_server_procs` (round-robin probing, bounds checks) stays legal;
/// the modulo only fires on lines that also touch key material.
void check_shard_route(const std::string& path, std::string_view line,
                       std::size_t lineno, std::vector<Violation>& out) {
  if (path.find("src/herd/") == std::string::npos) return;
  if (has_call(line, "partition_of")) {
    out.push_back({path, lineno, "shard-route",
                   "kv::partition_of() in herd code: route through the "
                   "ShardMap (shard_of/at) — after a promotion or "
                   "migration the primary is not hash % n_server_procs"});
    return;
  }
  if (!has_identifier(line, "key", /*allow_qualified=*/true) &&
      !has_identifier(line, "hash", /*allow_qualified=*/true) &&
      !has_identifier(line, "rank", /*allow_qualified=*/true)) {
    return;
  }
  static constexpr std::string_view kProcs = "n_server_procs";
  std::size_t pos = 0;
  while ((pos = line.find(kProcs, pos)) != std::string_view::npos) {
    // Walk left across the qualifier (cfg_. / cfg.herd. / this->cfg_.)
    // looking for a modulo feeding the identifier.
    std::size_t k = pos;
    while (k > 0) {
      char c = line[k - 1];
      if (is_ident_char(c) || c == '.' || c == ' ') {
        --k;
        continue;
      }
      if (c == '>' && k >= 2 && line[k - 2] == '-') {
        k -= 2;
        continue;
      }
      break;
    }
    if (k > 0 && line[k - 1] == '%') {
      out.push_back({path, lineno, "shard-route",
                     "key-derived `% n_server_procs` routing bypasses the "
                     "ShardMap: promotions and migrations move primaries"});
      return;
    }
    pos += kProcs.size();
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool load_suppressions(const fs::path& file, std::vector<Suppression>& out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    Suppression s;
    if (ss >> s.path_substring >> s.rule) out.push_back(std::move(s));
  }
  return true;
}

bool suppressed(const std::vector<Suppression>& supps, const Violation& v) {
  for (const Suppression& s : supps) {
    if (v.file.find(s.path_substring) != std::string::npos &&
        (s.rule == "*" || s.rule == v.rule)) {
      s.used = true;
      return true;
    }
  }
  return false;
}

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

void lint_file(const fs::path& path, std::vector<Violation>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string stripped = strip_comments_and_strings(buf.str());

  std::string generic = path.generic_string();
  bool registry_aware = mentions_resource_registry(stripped);
  bool bound_aware = mentions_queue_bound(stripped);
  PtrKeyTracker tracker;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= stripped.size()) {
    std::size_t nl = stripped.find('\n', start);
    std::string_view line(stripped.data() + start,
                          (nl == std::string::npos ? stripped.size() : nl) -
                              start);
    ++lineno;
    check_determinism(generic, line, lineno, out);
    tracker.scan_declaration(line);
    tracker.check_iteration(generic, line, lineno, out);
    check_resource_registry(generic, line, lineno, registry_aware, out);
    check_bounded_queue(generic, line, lineno, bound_aware, out);
    check_shard_route(generic, line, lineno, out);
    if (in_sim_path(generic)) check_raw_new(generic, line, lineno, out);
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--supp" && i + 1 < argc) {
      opt.supp_file = argv[++i];
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--supp FILE] [--verbose] DIR...\n", argv[0]);
      return 64;
    } else {
      opt.roots.emplace_back(a);
    }
  }
  if (opt.roots.empty()) {
    std::fprintf(stderr, "herd_lint: no directories given\n");
    return 64;
  }

  std::vector<Suppression> supps;
  if (!opt.supp_file.empty() && !load_suppressions(opt.supp_file, supps)) {
    std::fprintf(stderr, "herd_lint: cannot read suppression file %s\n",
                 opt.supp_file.string().c_str());
    return 64;
  }

  std::vector<Violation> violations;
  std::size_t files = 0;
  for (const fs::path& root : opt.roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      std::fprintf(stderr, "herd_lint: no such directory: %s\n",
                   root.string().c_str());
      return 64;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      // Planted-violation fixtures lint only when named as a root (the
      // canary test); a parent-directory sweep skips them.
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        paths.push_back(it->path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      ++files;
      lint_file(p, violations);
    }
  }

  std::size_t reported = 0;
  std::size_t suppressed_count = 0;
  for (const Violation& v : violations) {
    if (suppressed(supps, v)) {
      ++suppressed_count;
      if (opt.verbose) {
        std::printf("%s:%zu: suppressed [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.detail.c_str());
      }
      continue;
    }
    ++reported;
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.detail.c_str());
  }
  for (const Suppression& s : supps) {
    if (!s.used) {
      std::fprintf(stderr,
                   "herd_lint: warning: unused suppression `%s %s`\n",
                   s.path_substring.c_str(), s.rule.c_str());
    }
  }

  if (opt.verbose || reported > 0) {
    std::printf("herd_lint: %zu file(s), %zu violation(s), %zu suppressed\n",
                files, reported, suppressed_count);
  }
  return reported > 0 ? 1 : 0;
}
