// herd_lint v2 — flow-aware lint driver.
//
// Thin shell over the herd::analysis engine (src/analysis/): collects the
// files under each root, feeds them to the engine (lexer, per-TU index,
// cross-TU constant table + call graph, eleven rules), then applies the
// suppression file and prints diagnostics exactly like v1 did.
//
// Rules — see ANALYSIS.md for the catalog and provenance:
//   determinism, ptr-key-iter, raw-new, resource-registry, bounded-queue,
//   shard-route                       (legacy, byte-identical with v1)
//   chain-post                        (line-oriented, doorbell batching)
//   wire-symmetry, metric-pairing, determinism-taint,
//   span-pairing                      (flow-aware, v2)
//
// Usage: herd_lint [--supp FILE] [--verbose] [--sarif FILE]
//                  [--strict-supp] PATH...
//
//   PATH          directory (recursive; `lint_fixtures` dirs are skipped
//                 unless named as a root) or a single source file
//   --supp FILE   suppression file: `path-substring rule` per line, `#`
//                 comments, rule `*` matches all; unused entries warn
//   --strict-supp promote unused-suppression warnings to errors (CI)
//   --sarif FILE  also write the reported violations as SARIF 2.1.0
//   --verbose     print suppressed violations and the summary line
//
// Exit: 0 clean, 1 violations reported (or unused suppressions under
// --strict-supp), 64 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/sarif.hpp"
#include "analysis/violation.hpp"

namespace fs = std::filesystem;
using herd::analysis::Suppression;
using herd::analysis::Violation;

namespace {

struct Options {
  std::vector<fs::path> roots;
  fs::path supp_file;
  fs::path sarif_file;
  bool verbose = false;
  bool strict_supp = false;
};

bool load_suppressions(const fs::path& file, std::vector<Suppression>& out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    Suppression s;
    if (ss >> s.path_substring >> s.rule) out.push_back(std::move(s));
  }
  return true;
}

bool suppressed(const std::vector<Suppression>& supps, const Violation& v) {
  for (const Suppression& s : supps) {
    if (v.file.find(s.path_substring) != std::string::npos &&
        (s.rule == "*" || s.rule == v.rule)) {
      s.used = true;
      return true;
    }
  }
  return false;
}

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--supp" && i + 1 < argc) {
      opt.supp_file = argv[++i];
    } else if (a == "--sarif" && i + 1 < argc) {
      opt.sarif_file = argv[++i];
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--strict-supp") {
      opt.strict_supp = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--supp FILE] [--verbose] [--sarif FILE] "
                   "[--strict-supp] PATH...\n",
                   argv[0]);
      return 64;
    } else {
      opt.roots.emplace_back(a);
    }
  }
  if (opt.roots.empty()) {
    std::fprintf(stderr, "herd_lint: no directories given\n");
    return 64;
  }

  std::vector<Suppression> supps;
  if (!opt.supp_file.empty() && !load_suppressions(opt.supp_file, supps)) {
    std::fprintf(stderr, "herd_lint: cannot read suppression file %s\n",
                 opt.supp_file.string().c_str());
    return 64;
  }

  herd::analysis::Engine engine;
  for (const fs::path& root : opt.roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) {
      std::fprintf(stderr, "herd_lint: no such directory: %s\n",
                   root.string().c_str());
      return 64;
    }
    if (fs::is_regular_file(root, ec)) {
      if (lintable(root)) {
        engine.add_file(root.generic_string(), read_file(root));
      }
      continue;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      // Planted-violation fixtures lint only when named as a root (the
      // canary tests); a parent-directory sweep skips them. Matches both
      // lint_fixtures/ (legacy corpus) and lint_fixtures_flow/ (per-rule).
      if (it->is_directory() &&
          it->path().filename().string().rfind("lint_fixtures", 0) == 0) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        paths.push_back(it->path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      engine.add_file(p.generic_string(), read_file(p));
    }
  }
  engine.run();

  std::size_t reported = 0;
  std::size_t suppressed_count = 0;
  std::vector<Violation> sarif_results;
  for (const Violation& v : engine.violations()) {
    if (suppressed(supps, v)) {
      ++suppressed_count;
      if (opt.verbose) {
        std::printf("%s:%zu: suppressed [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.detail.c_str());
      }
      continue;
    }
    ++reported;
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.detail.c_str());
    if (!opt.sarif_file.empty()) sarif_results.push_back(v);
  }
  std::size_t unused_supps = 0;
  for (const Suppression& s : supps) {
    if (!s.used) {
      ++unused_supps;
      std::fprintf(stderr,
                   "herd_lint: %s: unused suppression `%s %s`\n",
                   opt.strict_supp ? "error" : "warning",
                   s.path_substring.c_str(), s.rule.c_str());
    }
  }

  if (!opt.sarif_file.empty()) {
    std::ofstream out(opt.sarif_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "herd_lint: cannot write SARIF file %s\n",
                   opt.sarif_file.string().c_str());
      return 64;
    }
    out << herd::analysis::to_sarif(sarif_results);
  }

  if (opt.verbose || reported > 0) {
    std::printf("herd_lint: %zu file(s), %zu violation(s), %zu suppressed\n",
                engine.file_count(), reported, suppressed_count);
  }
  if (reported > 0) return 1;
  if (opt.strict_supp && unused_supps > 0) return 1;
  return 0;
}
