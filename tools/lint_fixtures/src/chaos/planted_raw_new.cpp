// Lint canary: raw new/delete in a simulation path. Ownership must flow
// through std::unique_ptr or a container.
namespace herd::chaos {

int planted_raw_new() {
  int* p = new int(7);  // raw-new
  int v = *p;
  delete p;  // raw-new
  return v;
}

}  // namespace herd::chaos
