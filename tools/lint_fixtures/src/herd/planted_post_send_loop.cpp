// Lint canary: per-WR post_send() loops in herd hot paths. Each iteration
// rings its own doorbell (one PIO transaction per WR); the doorbell
// batching redesign exists so a whole quantum's responses leave as ONE
// chained post_send(span). Both loop shapes below must be flagged; the
// chained flush at the end must not be.
#include <cstdint>
#include <span>
#include <vector>

namespace herd::core {

struct FakeWr {
  std::uint64_t wr_id = 0;
};

struct FakeQp {
  void post_send(const FakeWr& wr);
  void post_send(std::span<const FakeWr> chain);
};

void planted_post_send_loop(FakeQp& qp, const std::vector<FakeWr>& done) {
  for (const FakeWr& wr : done) {
    qp.post_send(wr);  // chain-post
  }
  std::size_t i = 0;
  while (i < done.size()) qp.post_send(done[i++]);  // chain-post

  // The fixed idiom: one chained post for the whole batch. Not flagged.
  qp.post_send(std::span<const FakeWr>(done));
}

}  // namespace herd::core
