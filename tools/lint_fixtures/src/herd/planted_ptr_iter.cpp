// Lint canary: iterating a pointer-keyed unordered container. Iteration
// order follows pointer hash order, which follows allocator layout (ASLR),
// so any simulation decision made in this loop differs run to run.
#include <cstdint>
#include <unordered_map>

namespace herd::core {

struct Qp;

std::uint64_t planted_ptr_iter(const std::unordered_map<Qp*, int>& by_qp) {
  std::unordered_map<const Qp*, std::uint64_t> credits;
  std::uint64_t sum = 0;
  for (const auto& kv : credits) {  // ptr-key-iter
    sum += kv.second;
  }
  for (const auto& kv : by_qp) {  // ptr-key-iter
    sum += static_cast<std::uint64_t>(kv.second);
  }
  return sum;
}

}  // namespace herd::core
