// Lint canary: key-to-process routing that bypasses the shard map. After a
// backup promotion or a live shard migration the primary for a key is NOT
// hash(key) % n_server_procs, so both patterns below silently send
// requests to a process that no longer owns the shard.
#include <cstdint>

namespace herd::core {

struct FakeKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

std::uint32_t partition_of(const FakeKey& k, std::uint32_t n_parts);

struct FakeCfg {
  std::uint32_t n_server_procs = 6;
};

std::uint32_t planted_shard_bypass(const FakeKey& key, const FakeCfg& cfg) {
  std::uint32_t p = partition_of(key, cfg.n_server_procs);  // shard-route
  p ^= static_cast<std::uint32_t>(key.lo % cfg.n_server_procs);  // shard-route
  return p;
}

}  // namespace herd::core
