// Planted violation: bounded-queue. A request queue that grows without any
// capacity or watermark reference — the congestion-collapse ingredient the
// overload subsystem removes. herd_lint must flag the declaration because
// nothing in this file names a bound (queue_high/watermark/capacity/window).
#include <cstdint>
#include <deque>

namespace herd::core {

struct PlantedRequest {
  std::uint64_t key = 0;
};

class PlantedUnboundedQueue {
 public:
  void enqueue(const PlantedRequest& r) { pending_.push_back(r); }

 private:
  std::deque<PlantedRequest> pending_;  // grows forever under overload
};

}  // namespace herd::core
