// Planted violation for the herd_lint self-test: constructs a
// sim::Resource in a simulation path without ever touching the resource
// registry. The canary test requires herd_lint to flag this file
// [resource-registry]; if it passes, the rule went blind.
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace herd::pcie {

class HiddenLink {
 public:
  explicit HiddenLink(sim::Engine& engine)
      : res_(engine, "pcie.hidden") {}

  sim::Tick push(sim::Tick cost) { return res_.acquire(cost); }

 private:
  sim::Resource res_;
};

}  // namespace herd::pcie
