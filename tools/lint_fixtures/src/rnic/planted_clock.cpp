// Lint canary: std::random_device and host clocks in a simulation path.
#include <chrono>
#include <random>

namespace herd::rnic {

unsigned planted_clock() {
  std::random_device rd;  // determinism: hardware entropy
  auto now = std::chrono::steady_clock::now();  // determinism: host clock
  return rd() ^ static_cast<unsigned>(now.time_since_epoch().count());
}

}  // namespace herd::rnic
