// Lint canary: every call below must be flagged by herd_lint's determinism
// rule. This file is never compiled — it exists so the lint's own test
// suite proves the rules fire (see herd_lint_canary in tools/CMakeLists).
#include <cstdlib>
#include <ctime>

namespace herd::sim {

unsigned long planted_entropy() {
  unsigned long x = static_cast<unsigned long>(rand());  // determinism
  x ^= static_cast<unsigned long>(time(nullptr));        // determinism
  struct timespec ts {};
  clock_gettime(0, &ts);  // determinism
  return x ^ static_cast<unsigned long>(ts.tv_nsec);
}

}  // namespace herd::sim
