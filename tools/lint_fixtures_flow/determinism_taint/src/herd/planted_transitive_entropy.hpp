// Planted determinism-taint violation: a simulation-path function reaches
// std::rand() THROUGH a helper defined outside the simulation tree
// (src/util/jitter.hpp), so the per-file determinism rule sees nothing.
// herd_lint MUST flag the call site via the cross-TU call graph.
#pragma once

#include "util/jitter.hpp"

namespace fix {

inline int schedule_retry_tick(int base) {
  return base + fixutil::jitter_ms();  // PLANTED: transitive entropy
}

}  // namespace fix
