// Non-sim helper with a direct entropy sink. Legal on its own (src/util is
// outside the simulation tree), but any simulation-path caller inherits
// the taint — that caller is the planted violation.
#pragma once

#include <cstdlib>

namespace fixutil {

inline int jitter_ms() { return std::rand() % 5; }

}  // namespace fixutil
