// Planted metric-pairing violation: `ghost_reads` is linked into the
// registry but nothing anywhere increments it — the exported counter is
// forever zero. herd_lint MUST flag the link site.
#pragma once

#include <cstdint>

namespace fix {

struct Registry {
  template <typename T>
  void link(const char*, T*) {}
};

struct Stats {
  std::uint64_t ghost_reads = 0;
  std::uint64_t real_reads = 0;
};

inline void register_all(Registry& reg, Stats& s) {
  reg.link("fix.ghost_reads", &s.ghost_reads);  // PLANTED: never bumped
  reg.link("fix.real_reads", &s.real_reads);
}

inline void on_read(Stats& s) { ++s.real_reads; }

}  // namespace fix
