// Planted span-pairing violations. An open span exports as a lone "B"
// phase event, which obs::validate_trace_json rejects and trace_query
// misparses — so a span_begin must reach span_end on every path.
//
//   drain_once   closes the span only on the happy path: the early return
//                leaks it (the classic guard-clause bug)
//   fire_forget  discards the SpanId outright: nothing can ever close it
//
// herd_lint MUST flag both.
#pragma once

namespace fix {

inline unsigned drain_once(Tracer& tr, bool empty, long now) {
  unsigned span = tr.span_begin("proc0", "drr_wait", now);
  if (empty) {
    return 0;  // PLANTED: leaves drr_wait open
  }
  tr.span_end(span, now);
  return 1;
}

inline void fire_forget(Tracer& tr, long now) {
  tr.span_begin("proc0", "mica_op", now);  // PLANTED: id discarded
}

}  // namespace fix
