// Planted wire-symmetry violation: decode reads the deadline field two
// bytes past where encode wrote it (p + 4 vs p + 2). herd_lint MUST flag
// both the offset divergence and the block-budget overrun (4 + 8 > 10).
#pragma once

#include <cstdint>
#include <cstring>

namespace fix {

inline constexpr std::uint32_t kHdrBytes = 2 + 8;  // tenant + deadline

struct Msg {
  std::uint16_t tenant = 0;
  std::uint64_t deadline = 0;
};

inline void encode_hdr(std::uint8_t* p, const Msg& m) {
  std::memcpy(p, &m.tenant, 2);
  std::memcpy(p + 2, &m.deadline, 8);
  p += kHdrBytes;
  *p = 0;  // trailer sentinel keeps the bump observable
}

inline void decode_hdr(const std::uint8_t* tail, Msg& m) {
  const std::uint8_t* p = tail;
  p -= kHdrBytes;
  std::memcpy(&m.tenant, p, 2);
  std::memcpy(&m.deadline, p + 4, 8);  // PLANTED: 2-byte skew
}

}  // namespace fix
