// Answers "which sampled requests were slowest, and where did their time
// go" from a TRACE_*.json ("herd-trace/2") Chrome trace.
//
// Usage: trace_query [-n N] TRACE_*.json [more...]
//
// Events carrying args.trace group into per-request causal trees: the root
// is the client's "request" span (parent 0); child spans hang off their
// args.parent span id; instants print at their position in the tree. For
// each of the N slowest requests (by root-span duration) the tool prints an
// indented span tree with per-span start offsets and durations:
//
//   trace 0x300000007  42.312 us  (request, client0)
//     +0.000  client_post      0.170 us  [client0]
//     +1.210  drr_wait         3.400 us  [proc1]
//     ...
//
// Reads the same files bench binaries write under --bench-out, so a CI
// artifact can carry the "slowest requests" report next to the trace.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace {

using herd::obs::Json;

struct Node {
  std::string name;
  std::string track;
  std::string detail;
  double ts_us = 0;
  double dur_us = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  bool instant = false;
  std::vector<std::size_t> children;  // indices into Request::nodes
};

struct Request {
  std::uint64_t trace_id = 0;
  std::vector<Node> nodes;
  std::size_t root = SIZE_MAX;  // node with parent 0 (the client request)

  double total_us() const {
    return root == SIZE_MAX ? 0 : nodes[root].dur_us;
  }
};

double num(const Json* v) { return v == nullptr ? 0 : v->as_double(); }

std::uint64_t parse_trace_id(const std::string& s) {
  // args.trace is "0x<hex>".
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return std::strtoull(s.c_str() + 2, nullptr, 16);
  }
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Collects the per-trace requests of one trace document. Tracks are
/// resolved through the thread_name metadata rows.
std::vector<Request> collect(const Json& doc) {
  std::map<double, std::string> tracks;
  std::map<std::uint64_t, Request> by_trace;

  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return {};
  for (const Json& e : events->elements()) {
    if (!e.is_object()) continue;
    const Json* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      const Json* name = e.find("name");
      const Json* args = e.find("args");
      if (name != nullptr && name->is_string() &&
          name->as_string() == "thread_name" && args != nullptr) {
        if (const Json* tn = args->find("name"); tn != nullptr) {
          tracks[num(e.find("tid"))] = tn->as_string();
        }
      }
      continue;
    }
    const Json* args = e.find("args");
    if (args == nullptr) continue;
    const Json* trace = args->find("trace");
    if (trace == nullptr || !trace->is_string()) continue;
    std::uint64_t tid = parse_trace_id(trace->as_string());
    if (tid == 0) continue;

    Node n;
    if (const Json* name = e.find("name"); name != nullptr) {
      n.name = name->as_string();
    }
    n.track = tracks[num(e.find("tid"))];
    if (const Json* d = args->find("detail"); d != nullptr && d->is_string()) {
      n.detail = d->as_string();
    }
    n.ts_us = num(e.find("ts"));
    n.dur_us = num(e.find("dur"));
    n.span = static_cast<std::uint64_t>(num(args->find("span")));
    n.parent = static_cast<std::uint64_t>(num(args->find("parent")));
    n.instant = phase == "i";

    Request& r = by_trace[tid];
    r.trace_id = tid;
    r.nodes.push_back(std::move(n));
  }

  std::vector<Request> out;
  out.reserve(by_trace.size());
  for (auto& [tid, r] : by_trace) {
    // Wire up the tree: span id -> node index, children under their parent
    // (or under the root when the parent span is unknown/0).
    std::map<std::uint64_t, std::size_t> by_span;
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      if (r.nodes[i].span != 0) by_span[r.nodes[i].span] = i;
      if (r.nodes[i].parent == 0 && !r.nodes[i].instant &&
          r.root == SIZE_MAX) {
        r.root = i;
      }
    }
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      if (i == r.root) continue;
      auto it = by_span.find(r.nodes[i].parent);
      std::size_t parent =
          it != by_span.end() && it->second != i ? it->second : r.root;
      if (parent != SIZE_MAX) r.nodes[parent].children.push_back(i);
    }
    // Children in time order (emission order already is, but be explicit).
    for (Node& n : r.nodes) {
      std::sort(n.children.begin(), n.children.end(),
                [&r](std::size_t a, std::size_t b) {
                  return r.nodes[a].ts_us < r.nodes[b].ts_us;
                });
    }
    out.push_back(std::move(r));
  }
  return out;
}

void print_node(const Request& r, std::size_t idx, double origin_us,
                int depth) {
  const Node& n = r.nodes[idx];
  std::printf("  %*s+%.3f  %-18s", depth * 2, "", n.ts_us - origin_us,
              n.name.c_str());
  if (n.instant) {
    std::printf("  (instant)");
  } else {
    std::printf("  %8.3f us", n.dur_us);
  }
  if (!n.track.empty()) std::printf("  [%s]", n.track.c_str());
  if (!n.detail.empty()) std::printf("  %s", n.detail.c_str());
  std::printf("\n");
  for (std::size_t c : n.children) print_node(r, c, origin_us, depth + 1);
}

}  // namespace

int main(int argc, char** argv) {
  int top_n = 5;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty() || top_n <= 0) {
    std::fprintf(stderr, "usage: %s [-n N] TRACE_*.json [more...]\n", argv[0]);
    return 64;
  }

  int bad = 0;
  for (const char* path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Request> reqs;
    try {
      Json doc = Json::parse(buf.str());
      const Json* schema = doc.find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != herd::obs::kTraceSchema) {
        std::fprintf(stderr, "%s: not a %s document\n", path,
                     std::string(herd::obs::kTraceSchema).c_str());
        ++bad;
        continue;
      }
      reqs = collect(doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path, e.what());
      ++bad;
      continue;
    }

    // Slowest first by root-span duration; traces with no recognizable
    // root (producer bug) sort last but still print, flagged.
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const Request& a, const Request& b) {
                       return a.total_us() > b.total_us();
                     });
    std::printf("%s: %zu traced request(s)\n", path, reqs.size());
    int shown = 0;
    for (const Request& r : reqs) {
      if (shown++ >= top_n) break;
      if (r.root == SIZE_MAX) {
        std::printf("trace 0x%llx  (no root span: %zu orphan event(s))\n",
                    static_cast<unsigned long long>(r.trace_id),
                    r.nodes.size());
        continue;
      }
      const Node& root = r.nodes[r.root];
      std::printf("trace 0x%llx  %.3f us  (%s, %s)\n",
                  static_cast<unsigned long long>(r.trace_id), root.dur_us,
                  root.name.c_str(), root.track.c_str());
      for (std::size_t c : root.children) {
        print_node(r, c, root.ts_us, 0);
      }
    }
  }
  return bad == 0 ? 0 : 1;
}
